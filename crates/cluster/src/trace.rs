//! Recorded cluster traces: the routed-frame transcript of a live run.
//!
//! A live cluster run is *not* seeded-deterministic — node processes
//! race on wall-clock timers, OS scheduling, and pipe buffering — so
//! reproducibility comes from recording instead of reseeding. The
//! orchestrator's router is the single point every frame passes
//! through; it journals, in its own processing order:
//!
//! * [`ClusterEntry::Send`] — a frame surfaced at the router (read off a
//!   node's stdout, or a response the orchestrator synthesized from a
//!   dead node's register cache), together with the fate the shared
//!   fault-plan interpreter drew for it;
//! * [`ClusterEntry::Deliver`] — a frame written to a node's stdin (or
//!   accepted by a dead node's surviving register server); and
//! * [`ClusterEntry::Crash`] — a SIGKILL executed from the fault plan.
//!
//! The transcript, plus the run's recorded outcome, is a
//! [`ClusterTrace`]. [`crate::replay_trace`] re-runs it against
//! deterministic in-process replicas of the node state machine and
//! fails loudly if the journal could not have been produced by honest
//! nodes — making every committed fixture a regression test for the
//! node core, the codec, and the router, with no processes spawned.

use ftcolor_net::{FaultPlan, Frame};
use serde::{Deserialize, Serialize, Value};

/// Schema tag embedded in every serialized trace, bumped on breaking
/// format changes so stale fixtures fail loudly instead of misparsing.
pub const CLUSTER_TRACE_SCHEMA: &str = "ftcolor-cluster-trace/1";

/// The fate the router assigned to one surfaced frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SendFate {
    /// Queued for delivery (after the drawn delay; `dup` marks whether
    /// an extra duplicate copy was queued too).
    Delivered,
    /// Lost to the per-link drop probability.
    Dropped,
    /// Lost to an active partition window.
    Cut,
    /// Control-plane frame (`init_ok`, `decide`): consumed by the
    /// orchestrator, never fault-injected.
    Control,
}

/// One journaled router action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterEntry {
    /// A frame surfaced at the router and was assigned a fate.
    Send {
        /// Journal sequence number (0-based, gap-free).
        seq: u64,
        /// Milliseconds since run start when the router processed it.
        ms: u64,
        /// The fate drawn (or `Control` for orchestrator-bound frames).
        fate: SendFate,
        /// Whether an extra duplicate copy was queued.
        dup: bool,
        /// The frame, verbatim.
        frame: Frame,
    },
    /// A frame was handed to its destination.
    Deliver {
        /// Journal sequence number.
        seq: u64,
        /// Milliseconds since run start.
        ms: u64,
        /// The frame, verbatim.
        frame: Frame,
    },
    /// A node was SIGKILLed by the fault plan.
    Crash {
        /// Journal sequence number.
        seq: u64,
        /// Milliseconds since run start.
        ms: u64,
        /// The killed node.
        node: usize,
    },
}

impl ClusterEntry {
    /// The journal sequence number of this entry.
    pub fn seq(&self) -> u64 {
        match self {
            ClusterEntry::Send { seq, .. }
            | ClusterEntry::Deliver { seq, .. }
            | ClusterEntry::Crash { seq, .. } => *seq,
        }
    }
}

/// A complete recorded cluster run: configuration, journal, outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTrace {
    /// Format tag; must equal [`CLUSTER_TRACE_SCHEMA`].
    pub schema: String,
    /// Registry name of the algorithm (`alg1`, `alg2p`, …).
    pub alg: String,
    /// Ring size.
    pub n: usize,
    /// The orchestrator's fault-draw seed.
    pub seed: u64,
    /// Per-node input identifiers.
    pub ids: Vec<u64>,
    /// Wall milliseconds per fault-plan logical tick.
    pub tick_ms: u64,
    /// The fault plan that drove the run.
    pub plan: FaultPlan,
    /// The router journal, in router-processing order.
    pub entries: Vec<ClusterEntry>,
    /// Encoded outputs the orchestrator observed (`decide` frames);
    /// `Null` for nodes that crashed or stalled first.
    pub outputs: Vec<Value>,
    /// Nodes SIGKILLed by the plan.
    pub crashed: Vec<usize>,
    /// Live nodes that never decided before the run stopped.
    pub stalled: Vec<usize>,
}

impl ClusterTrace {
    /// The trace as one line of JSON (the canonical byte form).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("cluster traces always encode")
    }

    /// The trace as indented JSON (the committed-fixture form).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("cluster traces always encode")
    }

    /// Parses a serialized trace, rejecting unknown schema tags.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a schema mismatch.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let trace: ClusterTrace =
            serde_json::from_str(text).map_err(|e| format!("cluster trace: {e}"))?;
        if trace.schema != CLUSTER_TRACE_SCHEMA {
            return Err(format!(
                "cluster trace schema `{}` (expected `{CLUSTER_TRACE_SCHEMA}`)",
                trace.schema
            ));
        }
        Ok(trace)
    }

    /// FNV-1a digest of the canonical JSON form.
    pub fn digest(&self) -> u64 {
        ftcolor_net::trace::fnv1a(self.to_json().as_bytes())
    }

    /// Number of journal entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_net::{Body, SnapshotReq};

    fn sample() -> ClusterTrace {
        ClusterTrace {
            schema: CLUSTER_TRACE_SCHEMA.to_string(),
            alg: "alg2p".into(),
            n: 3,
            seed: 7,
            ids: vec![5, 9, 2],
            tick_ms: 5,
            plan: FaultPlan::default().with_crash(1, 4),
            entries: vec![
                ClusterEntry::Send {
                    seq: 0,
                    ms: 2,
                    fate: SendFate::Delivered,
                    dup: false,
                    frame: Frame {
                        src: 0,
                        dest: 1,
                        body: Body::SnapshotReq(SnapshotReq { round: 0 }),
                    },
                },
                ClusterEntry::Crash {
                    seq: 1,
                    ms: 20,
                    node: 1,
                },
            ],
            outputs: vec![
                Value::Number(serde::Number::PosInt(3)),
                Value::Null,
                Value::Null,
            ],
            crashed: vec![1],
            stalled: vec![2],
        }
    }

    #[test]
    fn trace_round_trips_and_digest_is_stable() {
        let t = sample();
        let json = t.to_json();
        let back = ClusterTrace::from_json(&json).expect("parses");
        assert_eq!(back, t);
        assert_eq!(back.to_json(), json, "canonical form is byte-stable");
        assert_eq!(back.digest(), t.digest());
        let pretty = t.to_json_pretty();
        assert_eq!(ClusterTrace::from_json(&pretty).expect("pretty parses"), t);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut t = sample();
        t.schema = "ftcolor-cluster-trace/99".into();
        let err = ClusterTrace::from_json(&t.to_json()).expect_err("schema gate");
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn seq_accessor_covers_all_variants() {
        let t = sample();
        let seqs: Vec<u64> = t.entries.iter().map(ClusterEntry::seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }
}
