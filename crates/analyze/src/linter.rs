//! The contract linter: an instrumented abstract executor that flags
//! §2 state-model violations as structured diagnostics.
//!
//! The engine is an [`ExecObserver`] attached to the plain
//! [`Execution`] via `run_observed`/`step_with_observed` — the observed
//! execution itself is bit-identical to an unobserved one (checked by
//! the property-based suite); all probing happens on **clones** of the
//! configuration:
//!
//! * **`FTC-SWMR-001` (single-writer)** — before each update the
//!   observer snapshots every process's prospective register
//!   (`publish(state)`); after the update it recomputes them. A change
//!   in any *other* process's prospective register means the step wrote
//!   a foreign register through interior mutability.
//! * **`FTC-DET-005` (determinism)** — each step is first run twice on
//!   clones of the same state against the same view; any divergence in
//!   post-state or step result is nondeterminism.
//! * **`FTC-SNAP-002` (snapshot scope)** — every (state, view, outcome)
//!   triple is recorded and **replayed later**, after other processes
//!   have taken real steps. A pure step is a function of (state, view)
//!   and must reproduce its outcome exactly; divergence on a
//!   deterministic step means hidden state outside the view leaked in.
//! * **`FTC-STAB-003` (decision stability)** — on `Return(o)`: the
//!   post-decision `publish` must equal the register written this round
//!   (no regression), and re-running the step from the post-decision
//!   state must `Return(o)` again.
//! * **`FTC-PAL-004` (palette)** — returned outputs map into the
//!   declared palette via the spec's `color_of`.
//! * **`FTC-WF-006` (wait-freedom)** — driven by [`lint_algorithm`]
//!   directly: each process is run solo (neighbors forever `⊥`) and
//!   must return within the declared bound.

use std::collections::{HashSet, VecDeque};

use ftcolor_model::prelude::*;
use ftcolor_model::{ExecObserver, Time};

use crate::contract::ContractSpec;
use crate::diag::{Diagnostic, RuleId};

/// Tuning knobs for one linter invocation.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Seeds for the random-schedule battery (each seed adds one
    /// crash-free and one crashy run).
    pub seeds: Vec<u64>,
    /// Fuel per battery run (runs that exhaust fuel are not themselves
    /// violations — only the solo audit checks termination).
    pub fuel: u64,
    /// Keep at most this many diagnostics per rule (the rest are
    /// duplicates of the same root cause).
    pub max_per_rule: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            seeds: vec![1, 2, 3],
            fuel: 5_000,
            max_per_rule: 4,
        }
    }
}

/// A recorded step awaiting deferred replay (the `FTC-SNAP-002` probe).
struct ReplayRec<A: Algorithm> {
    t: Time,
    p: ProcessId,
    before: A::State,
    view: Vec<Option<A::Reg>>,
    after: A::State,
    returned: Option<A::Output>,
}

/// The instrumenting observer. Create one per execution, attach with
/// [`Execution::run_observed`], then harvest with
/// [`LintObserver::finish`].
pub struct LintObserver<'a, A: Algorithm> {
    alg: &'a A,
    spec: &'a ContractSpec<A::Output>,
    diags: Vec<Diagnostic>,
    /// Prospective registers of all processes, captured before each update.
    expected_pub: Vec<A::Reg>,
    /// State captured in `on_before_update` for the pending replay record.
    pending_before: Option<A::State>,
    /// Probe-run outcome: expected (post-state, step result) of the real run.
    probe: Option<(A::State, Step<A::Output>)>,
    replays: VecDeque<ReplayRec<A>>,
    /// Processes already flagged nondeterministic (their replays are
    /// expected to diverge — suppressed to avoid misattributing SNAP).
    det_fired: HashSet<usize>,
}

/// Replay queue bound; older records are replayed eagerly when full.
const REPLAY_CAP: usize = 128;

impl<'a, A> LintObserver<'a, A>
where
    A: Algorithm,
    A::State: PartialEq,
{
    /// A fresh observer for one execution of `alg` under `spec`.
    pub fn new(alg: &'a A, spec: &'a ContractSpec<A::Output>) -> Self {
        LintObserver {
            alg,
            spec,
            diags: Vec::new(),
            expected_pub: Vec::new(),
            pending_before: None,
            probe: None,
            replays: VecDeque::new(),
            det_fired: HashSet::new(),
        }
    }

    /// Drains the remaining replay queue and yields the diagnostics.
    pub fn finish(mut self) -> Vec<Diagnostic> {
        while let Some(rec) = self.replays.pop_front() {
            self.replay_check(&rec);
        }
        self.diags
    }

    fn emit(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Re-runs a recorded step and compares outcomes. Sound at any later
    /// point: a deterministic step that reads only (state, view) must
    /// reproduce exactly; the *deferral* is what perturbs hidden state
    /// enough to expose smuggling.
    fn replay_check(&mut self, rec: &ReplayRec<A>) {
        if self.det_fired.contains(&rec.p.index()) {
            return;
        }
        let mut state = rec.before.clone();
        let result = self.alg.step(&mut state, &Neighborhood::new(&rec.view));
        let same_return = match (&result, &rec.returned) {
            (Step::Continue, None) => true,
            (Step::Return(o), Some(o2)) => o == o2,
            _ => false,
        };
        if state != rec.after || !same_return {
            self.emit(
                Diagnostic::new(
                    RuleId::Snap,
                    &self.spec.name,
                    format!(
                        "replaying the step of process {} (recorded at t={}) after later \
                         activity changed its outcome — the step reads hidden state \
                         outside its snapshot view",
                        rec.p, rec.t
                    ),
                )
                .process(rec.p.index())
                .time(rec.t),
            );
        }
    }
}

impl<'a, A> ExecObserver<A> for LintObserver<'a, A>
where
    A: Algorithm,
    A::State: PartialEq,
{
    fn on_before_update(
        &mut self,
        t: Time,
        p: ProcessId,
        states: &[A::State],
        view: &[Option<A::Reg>],
    ) {
        // Deferred replays of strictly earlier steps (FTC-SNAP-002).
        while self
            .replays
            .front()
            .is_some_and(|r| r.t < t || self.replays.len() > REPLAY_CAP)
        {
            let rec = self.replays.pop_front().expect("front checked");
            self.replay_check(&rec);
        }

        // Prospective registers of everyone, for the SWMR check.
        self.expected_pub = states.iter().map(|s| self.alg.publish(s)).collect();

        // Determinism probe: the same step twice, on clones.
        let mut c1 = states[p.index()].clone();
        let r1 = self.alg.step(&mut c1, &Neighborhood::new(view));
        let mut c2 = states[p.index()].clone();
        let r2 = self.alg.step(&mut c2, &Neighborhood::new(view));
        if c1 != c2 || r1 != r2 {
            self.det_fired.insert(p.index());
            self.emit(
                Diagnostic::new(
                    RuleId::Det,
                    &self.spec.name,
                    format!(
                        "two runs of the step of process {p} from the same state and \
                         view diverged (post-states {}, results {})",
                        if c1 == c2 { "agree" } else { "differ" },
                        if r1 == r2 { "agree" } else { "differ" },
                    ),
                )
                .process(p.index())
                .time(t),
            );
        }
        self.probe = Some((c1, r1));
        self.pending_before = Some(states[p.index()].clone());
    }

    fn on_after_update(
        &mut self,
        t: Time,
        p: ProcessId,
        states: &[A::State],
        view: &[Option<A::Reg>],
        returned: Option<&A::Output>,
    ) {
        // FTC-SWMR-001: did p's step change anyone else's prospective
        // register?
        let foreign_writes: Vec<usize> = self
            .expected_pub
            .iter()
            .enumerate()
            .filter(|&(q, expected)| q != p.index() && self.alg.publish(&states[q]) != *expected)
            .map(|(q, _)| q)
            .collect();
        for q in foreign_writes {
            self.emit(
                Diagnostic::new(
                    RuleId::Swmr,
                    &self.spec.name,
                    format!(
                        "the step of process {p} changed the prospective register \
                         of process {q} — a write outside its own register"
                    ),
                )
                .process(p.index())
                .time(t),
            );
        }

        // Probe-vs-real comparison: if the probe runs agreed with each
        // other but not with the real run, running the step an extra
        // time perturbed hidden state (FTC-SNAP-002 territory).
        if let Some((probe_state, probe_result)) = self.probe.take() {
            let real_matches = match (&probe_result, returned) {
                (Step::Continue, None) => probe_state == states[p.index()],
                (Step::Return(o), Some(o2)) => *o == *o2 && probe_state == states[p.index()],
                _ => false,
            };
            if !real_matches && !self.det_fired.contains(&p.index()) {
                self.emit(
                    Diagnostic::new(
                        RuleId::Snap,
                        &self.spec.name,
                        format!(
                            "the probe run of process {p}'s step disagrees with the \
                             real run despite identical state and view — hidden \
                             mutable state outside the snapshot"
                        ),
                    )
                    .process(p.index())
                    .time(t),
                );
            }
        }

        if let Some(o) = returned {
            // FTC-PAL-004: the decided color is inside the palette.
            if let (Some(palette), Some(color)) = (self.spec.palette, (self.spec.color_of)(o)) {
                if color >= palette {
                    self.emit(
                        Diagnostic::new(
                            RuleId::Pal,
                            &self.spec.name,
                            format!(
                                "process {p} returned color {color}, outside the \
                                 declared palette of {palette} colors"
                            ),
                        )
                        .process(p.index())
                        .time(t),
                    );
                }
            }

            // FTC-STAB-003a: the register must not regress at decision
            // time — publish(post-decision state) must equal the
            // register written in phase 1 of this very round.
            if self.alg.publish(&states[p.index()]) != self.expected_pub[p.index()] {
                self.emit(
                    Diagnostic::new(
                        RuleId::Stab,
                        &self.spec.name,
                        format!(
                            "process {p} decided with a register different from the \
                             one it published this round — neighbors can never read \
                             the deciding value (register regression)"
                        ),
                    )
                    .process(p.index())
                    .time(t),
                );
            }

            // FTC-STAB-003b: re-activating a decided process must
            // reproduce the same decision.
            let mut post = states[p.index()].clone();
            match self.alg.step(&mut post, &Neighborhood::new(view)) {
                Step::Return(o2) if o2 == *o => {}
                Step::Return(_) => self.emit(
                    Diagnostic::new(
                        RuleId::Stab,
                        &self.spec.name,
                        format!(
                            "process {p} re-activated after deciding returns a different color"
                        ),
                    )
                    .process(p.index())
                    .time(t),
                ),
                Step::Continue => self.emit(
                    Diagnostic::new(
                        RuleId::Stab,
                        &self.spec.name,
                        format!("process {p} re-activated after deciding un-decides (Continue)"),
                    )
                    .process(p.index())
                    .time(t),
                ),
            }
        }

        // Queue the step for deferred replay.
        if let Some(before) = self.pending_before.take() {
            self.replays.push_back(ReplayRec {
                t,
                p,
                before,
                view: view.to_vec(),
                after: states[p.index()].clone(),
                returned: returned.cloned(),
            });
        }
    }
}

/// Runs the full abstract-contract rule set on one (algorithm, instance)
/// pair: a battery of schedules (synchronous, round-robin, seeded random
/// subsets, seeded random + one crash) under the instrumenting observer,
/// plus the solo wait-freedom audit. Returns capped, waiver-annotated
/// diagnostics.
pub fn lint_algorithm<A>(
    alg: &A,
    spec: &ContractSpec<A::Output>,
    topo: &Topology,
    inputs: &[A::Input],
    cfg: &LintConfig,
) -> Vec<Diagnostic>
where
    A: Algorithm,
    A::Input: Clone,
    A::State: PartialEq,
{
    let mut diags: Vec<Diagnostic> = Vec::new();
    let n = topo.len();

    let mut battery = |schedule: Box<dyn Schedule>| {
        let mut obs = LintObserver::new(alg, spec);
        let mut exec = Execution::new(alg, topo, inputs.to_vec());
        // Fuel exhaustion and crashes are not contract violations here:
        // the safety rules were checked at every step along the way.
        let _ = exec.run_observed(schedule, cfg.fuel, &mut obs);
        diags.extend(obs.finish());
    };

    battery(Box::new(Synchronous::new()));
    battery(Box::new(RoundRobin::new()));
    for &seed in &cfg.seeds {
        battery(Box::new(RandomSubset::new(seed, 0.5)));
        let crash_p = ProcessId(seed as usize % n);
        battery(Box::new(CrashPlan::new(
            RandomSubset::new(seed, 0.6),
            [(crash_p, 2 + seed % 3)],
        )));
    }

    // FTC-WF-006: the solo audit. Each process runs alone against
    // forever-⊥ neighbors and must return within the declared bound;
    // the observer stays attached so the per-step rules also see solo
    // executions.
    if let Some(bound) = spec.solo_bound {
        for p in topo.nodes() {
            let mut obs = LintObserver::new(alg, spec);
            let mut exec = Execution::new(alg, topo, inputs.to_vec());
            let mut rounds = 0u64;
            let returned = loop {
                if rounds >= bound {
                    break false;
                }
                exec.step_with_observed(&ActivationSet::solo(p), &mut obs);
                rounds += 1;
                if exec.outputs()[p.index()].is_some() {
                    break true;
                }
            };
            if !returned {
                diags.push(
                    Diagnostic::new(
                        RuleId::Wf,
                        &spec.name,
                        format!(
                            "solo execution of process {p} did not return within the \
                             declared bound of {bound} rounds — not wait-free"
                        ),
                    )
                    .process(p.index()),
                );
            }
            diags.extend(obs.finish());
        }
    }

    apply_waivers(&mut diags, spec);
    cap_per_rule(diags, cfg.max_per_rule)
}

/// Marks diagnostics whose rule the spec waives.
pub fn apply_waivers<O>(diags: &mut [Diagnostic], spec: &ContractSpec<O>) {
    for d in diags.iter_mut() {
        if let Some(reason) = spec.waiver_for(d.rule) {
            d.waived = true;
            d.waiver_reason = Some(reason.to_string());
        }
    }
}

/// Keeps the first `cap` diagnostics of each rule (the rest repeat the
/// same root cause across battery runs).
pub fn cap_per_rule(diags: Vec<Diagnostic>, cap: usize) -> Vec<Diagnostic> {
    let mut kept: Vec<Diagnostic> = Vec::new();
    for d in diags {
        if kept.iter().filter(|k| k.rule == d.rule).count() < cap {
            kept.push(d);
        }
    }
    kept
}
