//! Structured diagnostics with compiler-lint-style rule IDs.
//!
//! Every contract violation the analyzer finds is a [`Diagnostic`]
//! carrying a [`RuleId`], the offending algorithm, and (when known) the
//! process and model time. Diagnostics render as text lints
//! (`error[FTC-SWMR-001]: …`) or as JSON records for the CI gate.

use std::fmt;

/// The analyzer's rule set. `FTC-*-0xx` rules come from the abstract
/// contract linter, `FTC-RT-1xx` from the runtime race detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// `FTC-SWMR-001` — a step wrote a register its process doesn't own.
    Swmr,
    /// `FTC-SNAP-002` — a step read state outside the handed view.
    Snap,
    /// `FTC-STAB-003` — a decided color or published register changed.
    Stab,
    /// `FTC-PAL-004` — an emitted color exceeds the declared palette.
    Pal,
    /// `FTC-DET-005` — identical state+view produced different steps.
    Det,
    /// `FTC-WF-006` — a solo execution exceeded the declared round bound.
    Wf,
    /// `FTC-TERM-007` — a solo run from a statically reachable state
    /// lassoes (or exhausts fuel) without deciding.
    Term,
    /// `FTC-DOM-008` — a reachable state escapes the certified abstract
    /// domain (widening breach, state-cap overflow, or an algorithm with
    /// no certifiable domain at all).
    Dom,
    /// `FTC-RT-101` — register locks acquired out of global index order.
    RtLockOrder,
    /// `FTC-RT-102` — a round's snapshot interval was not atomic.
    RtAtomicity,
    /// `FTC-RT-103` — per-register round orders admit no linearization.
    RtLinearization,
    /// `FTC-RT-104` — two register accesses unordered by happens-before.
    RtRace,
}

impl RuleId {
    /// Every rule, linter rules first.
    pub const ALL: [RuleId; 12] = [
        RuleId::Swmr,
        RuleId::Snap,
        RuleId::Stab,
        RuleId::Pal,
        RuleId::Det,
        RuleId::Wf,
        RuleId::Term,
        RuleId::Dom,
        RuleId::RtLockOrder,
        RuleId::RtAtomicity,
        RuleId::RtLinearization,
        RuleId::RtRace,
    ];

    /// The stable rule code (what CI configs and waivers reference).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::Swmr => "FTC-SWMR-001",
            RuleId::Snap => "FTC-SNAP-002",
            RuleId::Stab => "FTC-STAB-003",
            RuleId::Pal => "FTC-PAL-004",
            RuleId::Det => "FTC-DET-005",
            RuleId::Wf => "FTC-WF-006",
            RuleId::Term => "FTC-TERM-007",
            RuleId::Dom => "FTC-DOM-008",
            RuleId::RtLockOrder => "FTC-RT-101",
            RuleId::RtAtomicity => "FTC-RT-102",
            RuleId::RtLinearization => "FTC-RT-103",
            RuleId::RtRace => "FTC-RT-104",
        }
    }

    /// One-line description of the contract the rule enforces.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::Swmr => "a step may write only its own register (SWMR discipline, §2)",
            RuleId::Snap => "a step may read only the snapshot view it was handed",
            RuleId::Stab => "a decided color never changes and its register never regresses",
            RuleId::Pal => "emitted colors stay within the algorithm's declared palette",
            RuleId::Det => "identical state and view must produce identical steps",
            RuleId::Wf => "solo executions terminate within the declared round bound",
            RuleId::Term => "every solo run from every reachable state reaches a decision",
            RuleId::Dom => "every reachable state stays inside the certified abstract domain",
            RuleId::RtLockOrder => "register locks are acquired in global index order",
            RuleId::RtAtomicity => "a round's write + neighbor reads form one atomic interval",
            RuleId::RtLinearization => {
                "per-register round orders form an acyclic (linearizable) history"
            }
            RuleId::RtRace => "same-register accesses are ordered by happens-before",
        }
    }

    /// Parses a stable code (`"FTC-SWMR-001"`) back into a rule.
    pub fn from_code(code: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.code() == code)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// The algorithm (registry name) being analyzed.
    pub alg: String,
    /// The offending process, when attributable.
    pub process: Option<usize>,
    /// The model time (or runtime round) of the violation, when known.
    pub time: Option<u64>,
    /// Human-readable description of the specific violation.
    pub message: String,
    /// `true` when the registry entry declares this rule waived.
    pub waived: bool,
    /// The declared waiver justification, if waived.
    pub waiver_reason: Option<String>,
}

impl Diagnostic {
    /// A new unwaived diagnostic with no location.
    pub fn new(rule: RuleId, alg: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            alg: alg.into(),
            process: None,
            time: None,
            message: message.into(),
            waived: false,
            waiver_reason: None,
        }
    }

    /// Attaches the offending process.
    pub fn process(mut self, p: usize) -> Self {
        self.process = Some(p);
        self
    }

    /// Attaches the model time / runtime round.
    pub fn time(mut self, t: u64) -> Self {
        self.time = Some(t);
        self
    }

    /// Renders compiler-lint style, e.g.
    /// `error[FTC-SWMR-001]: alg foo, process 2, t=7: …`.
    pub fn render(&self) -> String {
        let sev = if self.waived { "waived" } else { "error" };
        let mut loc = format!("alg {}", self.alg);
        if let Some(p) = self.process {
            loc.push_str(&format!(", process {p}"));
        }
        if let Some(t) = self.time {
            loc.push_str(&format!(", t={t}"));
        }
        let mut out = format!("{sev}[{}]: {loc}: {}", self.rule, self.message);
        if let Some(reason) = &self.waiver_reason {
            out.push_str(&format!("\n  note: waived: {reason}"));
        }
        out
    }

    /// Renders one JSON object (stable keys, suitable for the CI gate).
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"code\":{}", json_str(self.rule.code())),
            format!("\"alg\":{}", json_str(&self.alg)),
            format!("\"waived\":{}", self.waived),
            format!("\"message\":{}", json_str(&self.message)),
        ];
        if let Some(p) = self.process {
            fields.push(format!("\"process\":{p}"));
        }
        if let Some(t) = self.time {
            fields.push(format!("\"time\":{t}"));
        }
        if let Some(reason) = &self.waiver_reason {
            fields.push(format!("\"waiver_reason\":{}", json_str(reason)));
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// Renders a batch of diagnostics as a JSON array.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let body: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", body.join(","))
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::from_code(rule.code()), Some(rule));
        }
        assert_eq!(RuleId::from_code("FTC-NOPE-999"), None);
    }

    #[test]
    fn render_mentions_code_and_location() {
        let d = Diagnostic::new(RuleId::Swmr, "alg1", "wrote register 3")
            .process(2)
            .time(7);
        let s = d.render();
        assert!(s.contains("error[FTC-SWMR-001]"));
        assert!(s.contains("process 2"));
        assert!(s.contains("t=7"));
    }

    #[test]
    fn json_escapes_and_has_stable_keys() {
        let d = Diagnostic::new(RuleId::Pal, "m\"x", "color 6 > palette \"5\"");
        let j = d.to_json();
        assert!(j.contains("\"code\":\"FTC-PAL-004\""));
        assert!(j.contains("\\\"5\\\""));
        assert_eq!(
            render_json(&[d.clone(), d]).matches("FTC-PAL-004").count(),
            2
        );
    }
}
