//! The shipped-algorithm registry: every algorithm in the repo wired to
//! its declared contract, plus the runtime race-detector matrix.
//!
//! `ftcolor analyze` and `tests/analyze.rs` both drive this module, so
//! the CLI, the test suite, and the CI gate agree on what "all shipped
//! algorithms pass the full rule set" means. Registry entries may
//! declare [`Waiver`](crate::contract::Waiver)s for *documented*
//! violations (e.g. `ImpatientMis`'s unpublished-verdict flaw, which is
//! the repo's E7 exhibit, not a regression); waived diagnostics stay
//! visible in reports but don't fail the gate.

use ftcolor_core::decoupled_ring::DecoupledThreeColoring;
use ftcolor_core::mis::{EagerMis, ImpatientMis, LocalMaxMis, MisOutput};
use ftcolor_core::renaming::RankRenaming;
use ftcolor_core::sync_local::{ColeVishkinThree, CvInput};
use ftcolor_core::{
    DeltaSquaredColoring, FastFiveColoring, FastFiveColoringPatched, FiveColoring,
    FiveColoringPatched, PairColor, SixColoring,
};
use ftcolor_model::decoupled::DecoupledExecution;
use ftcolor_model::{inputs, prelude::*};
use ftcolor_runtime::{run_threaded, RunOptions};

use crate::contract::ContractSpec;
use crate::diag::{Diagnostic, RuleId};
use crate::linter::{apply_waivers, cap_per_rule, lint_algorithm, LintConfig};
use crate::race::check_events;

/// Names of every registry entry, in analysis order.
pub const SHIPPED: [&str; 12] = [
    "alg1",
    "alg2",
    "alg2p",
    "alg3",
    "alg3p",
    "alg4",
    "cv",
    "renaming",
    "mis-localmax",
    "mis-eager",
    "mis-impatient",
    "decoupled-ring",
];

/// The lint outcome for one registry entry.
#[derive(Debug, Clone)]
pub struct AlgReport {
    /// The registry name.
    pub name: &'static str,
    /// All diagnostics, waived ones included (and marked).
    pub diagnostics: Vec<Diagnostic>,
}

impl AlgReport {
    /// Diagnostics that actually count against the CI gate.
    pub fn unwaived(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.waived)
    }

    /// `true` when no unwaived diagnostic fired.
    pub fn clean(&self) -> bool {
        self.unwaived().next().is_none()
    }
}

/// Fresh distinct identifiers for an `n`-node instance.
fn ids(n: usize, seed: u64) -> Vec<u64> {
    inputs::random_unique(n, 10_000, seed)
}

/// Runs the full abstract rule set on the named shipped algorithm over
/// cycle sizes `sizes` (cliques for `renaming`, plus a grid for `alg4`).
/// Returns `None` for unknown names; see [`SHIPPED`].
pub fn analyze_alg(name: &str, sizes: &[usize], cfg: &LintConfig) -> Option<AlgReport> {
    let mut diagnostics = Vec::new();
    let pair_palette = |delta: u64| {
        move |c: &PairColor| Some(c.flat_index()).filter(|_| PairColor::palette_size(delta) > 0)
    };
    match name {
        "alg1" => {
            for &n in sizes {
                let topo = Topology::cycle(n).ok()?;
                let spec = ContractSpec::new(name)
                    .palette(PairColor::palette_size(2), pair_palette(2))
                    .solo_bound(4);
                diagnostics.extend(lint_algorithm(&SixColoring, &spec, &topo, &ids(n, 7), cfg));
            }
        }
        "alg2" => {
            for &n in sizes {
                let topo = Topology::cycle(n).ok()?;
                let spec = ContractSpec::new(name)
                    .palette(5, |&c: &u64| Some(c))
                    .solo_bound(4);
                diagnostics.extend(lint_algorithm(&FiveColoring, &spec, &topo, &ids(n, 7), cfg));
            }
        }
        "alg2p" => {
            for &n in sizes {
                let topo = Topology::cycle(n).ok()?;
                let spec = ContractSpec::new(name)
                    .palette(5, |&c: &u64| Some(c))
                    .solo_bound(4);
                diagnostics.extend(lint_algorithm(
                    &FiveColoringPatched,
                    &spec,
                    &topo,
                    &ids(n, 7),
                    cfg,
                ));
            }
        }
        "alg3" => {
            for &n in sizes {
                let topo = Topology::cycle(n).ok()?;
                let spec = ContractSpec::new(name)
                    .palette(5, |&c: &u64| Some(c))
                    .solo_bound(4);
                diagnostics.extend(lint_algorithm(
                    &FastFiveColoring,
                    &spec,
                    &topo,
                    &inputs::staircase_poly(n),
                    cfg,
                ));
            }
        }
        "alg3p" => {
            for &n in sizes {
                let topo = Topology::cycle(n).ok()?;
                let spec = ContractSpec::new(name)
                    .palette(5, |&c: &u64| Some(c))
                    .solo_bound(4);
                diagnostics.extend(lint_algorithm(
                    &FastFiveColoringPatched,
                    &spec,
                    &topo,
                    &inputs::staircase_poly(n),
                    cfg,
                ));
            }
        }
        "alg4" => {
            // Cycles (Δ=2) plus a torus grid (Δ=4): the palette claim is
            // per-instance, (Δ+1)(Δ+2)/2.
            for &n in sizes {
                let topo = Topology::cycle(n).ok()?;
                let delta = topo.max_degree() as u64;
                let spec = ContractSpec::new(name)
                    .palette(PairColor::palette_size(delta), pair_palette(delta))
                    .solo_bound(4);
                diagnostics.extend(lint_algorithm(
                    &DeltaSquaredColoring,
                    &spec,
                    &topo,
                    &ids(n, 7),
                    cfg,
                ));
            }
            let topo = Topology::grid(3, 3, true).ok()?;
            let delta = topo.max_degree() as u64;
            let spec = ContractSpec::new(name)
                .palette(PairColor::palette_size(delta), pair_palette(delta))
                .solo_bound(4);
            diagnostics.extend(lint_algorithm(
                &DeltaSquaredColoring,
                &spec,
                &topo,
                &ids(9, 7),
                cfg,
            ));
        }
        "cv" => {
            for &n in sizes {
                let topo = Topology::cycle(n).ok()?;
                let xs = ids(n, 7);
                let alg = ColeVishkinThree::for_max_id(*xs.iter().max().expect("n >= 3"));
                let cv_inputs: Vec<CvInput> = xs
                    .iter()
                    .enumerate()
                    .map(|(pos, &x)| CvInput { x, pos, n })
                    .collect();
                let spec = ContractSpec::new(name)
                    .palette(3, |&c: &u64| Some(c))
                    .solo_bound(16)
                    .waive(
                        RuleId::Wf,
                        "the Cole–Vishkin baseline is a synchronous LOCAL algorithm run \
                         under an α-synchronizer: it waits for neighbors by design, so \
                         solo executions never terminate (this is the paper's point of \
                         comparison, not a bug)",
                    );
                diagnostics.extend(lint_algorithm(&alg, &spec, &topo, &cv_inputs, cfg));
            }
        }
        "renaming" => {
            for &n in sizes {
                let topo = Topology::clique(n).ok()?;
                let spec = ContractSpec::new(name)
                    .palette(2 * n as u64 - 1, |&c: &u64| Some(c))
                    .solo_bound(4);
                diagnostics.extend(lint_algorithm(
                    &RankRenaming,
                    &spec,
                    &topo,
                    &inputs::random_unique(n, 100_000, 3),
                    cfg,
                ));
            }
        }
        "mis-localmax" => {
            for &n in sizes {
                let topo = Topology::cycle(n).ok()?;
                let spec = ContractSpec::new(name).palette(2, mis_color).solo_bound(4);
                diagnostics.extend(lint_algorithm(&LocalMaxMis, &spec, &topo, &ids(n, 7), cfg));
            }
        }
        "mis-eager" => {
            for &n in sizes {
                let topo = Topology::cycle(n).ok()?;
                let spec = ContractSpec::new(name).palette(2, mis_color).solo_bound(4);
                diagnostics.extend(lint_algorithm(&EagerMis, &spec, &topo, &ids(n, 7), cfg));
            }
        }
        "mis-impatient" => {
            for &n in sizes {
                let topo = Topology::cycle(n).ok()?;
                let spec = ContractSpec::new(name)
                    .palette(2, mis_color)
                    .solo_bound(4)
                    .waive(
                        RuleId::Stab,
                        "documented E7 flaw: ImpatientMis commits a verdict computed in \
                         the same round, so the deciding register value is never \
                         published — exactly the unpublished-verdict failure the repo \
                         exhibits on purpose",
                    );
                diagnostics.extend(lint_algorithm(&ImpatientMis, &spec, &topo, &ids(n, 7), cfg));
            }
        }
        "decoupled-ring" => {
            for &n in sizes {
                diagnostics.extend(lint_decoupled(n, cfg)?);
            }
        }
        _ => return None,
    }
    Some(AlgReport {
        name: SHIPPED
            .into_iter()
            .find(|s| *s == name)
            .expect("matched above"),
        diagnostics,
    })
}

/// Maps an MIS verdict onto the two-"color" palette {In = 0, Out = 1}.
#[allow(clippy::trivially_copy_pass_by_ref)]
fn mis_color(o: &MisOutput) -> Option<u64> {
    Some(match o {
        MisOutput::In => 0,
        MisOutput::Out => 1,
    })
}

/// The DECOUPLED ring 3-coloring doesn't implement [`Algorithm`] (its
/// `decide` reads a knowledge ball, not registers), so the generic
/// instrumented executor can't run it. This path checks the rules that
/// survive translation — palette, determinism (two identical runs must
/// be bit-identical), and wait-freedom (a solo process decides once its
/// knowledge radius suffices) — and declares the register-specific
/// rules (SWMR, snapshot scope, stability) waived as not applicable.
fn lint_decoupled(n: usize, cfg: &LintConfig) -> Option<Vec<Diagnostic>> {
    let name = "decoupled-ring";
    let alg = DecoupledThreeColoring::new();
    let topo = Topology::cycle(n).ok()?;
    let xs = ids(n, 7);
    let spec: ContractSpec<u64> = ContractSpec::new(name)
        .palette(3, |&c: &u64| Some(c))
        .solo_bound(alg.required_radius() as u64 + 1)
        .waive(
            RuleId::Swmr,
            "DECOUPLED model: processes own no registers; decide() is read-only",
        )
        .waive(
            RuleId::Snap,
            "DECOUPLED model: the knowledge ball is the whole view by definition",
        )
        .waive(
            RuleId::Stab,
            "DECOUPLED model: a process is activated at most once after deciding",
        );
    let mut diags = Vec::new();

    // Determinism: identical schedules must give identical outputs.
    for &seed in &cfg.seeds {
        let run = |_: ()| {
            let mut exec = DecoupledExecution::new(&alg, &topo, xs.clone());
            exec.run(RandomSubset::new(seed, 0.5), cfg.fuel).ok()
        };
        let (a, b) = (run(()), run(()));
        if a.as_ref().map(|r| &r.outputs) != b.as_ref().map(|r| &r.outputs) {
            diags.push(Diagnostic::new(
                RuleId::Det,
                name,
                format!("two identical DECOUPLED runs (seed {seed}) produced different outputs"),
            ));
        }
        // Palette over whatever returned.
        if let Some(report) = &a {
            for (p, c) in report.returned() {
                if *c > 2 {
                    diags.push(
                        Diagnostic::new(
                            RuleId::Pal,
                            name,
                            format!("process {p} returned color {c}, outside the 3-color palette"),
                        )
                        .process(p.index()),
                    );
                }
            }
        }
    }

    // Wait-freedom: a solo process decides once its knowledge radius
    // reaches the algorithm's requirement (time advances regardless of
    // other processes in this model — that's the model separation).
    let bound = spec.solo_bound.expect("set above");
    for p in topo.nodes() {
        let mut exec = DecoupledExecution::new(&alg, &topo, xs.clone());
        let solo = FixedSequence::from_indices(vec![vec![p.index()]; bound as usize]);
        let _ = exec.run(solo, bound + 2);
        if exec.outputs()[p.index()].is_none() {
            diags.push(
                Diagnostic::new(
                    RuleId::Wf,
                    name,
                    format!(
                        "solo DECOUPLED execution of process {p} did not decide within \
                         radius bound {bound}"
                    ),
                )
                .process(p.index()),
            );
        }
    }

    apply_waivers(&mut diags, &spec);
    Some(cap_per_rule(diags, cfg.max_per_rule))
}

/// Runs [`analyze_alg`] over every registry entry.
pub fn analyze_all(sizes: &[usize], cfg: &LintConfig) -> Vec<AlgReport> {
    SHIPPED
        .into_iter()
        .map(|name| analyze_alg(name, sizes, cfg).expect("registry names are exhaustive"))
        .collect()
}

/// The runtime race-detector matrix: replays the cross-substrate
/// conformance configurations — {Alg1, Alg2-patched} × {C5, C8} ×
/// {no-crash, 1-crash} × 3 seeds — through the threaded runtime with
/// event recording, and checks every log for atomic-snapshot
/// linearization. Returns all diagnostics (empty = the runtime kept its
/// fidelity promise on every configuration).
pub fn race_matrix() -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &n in &[5usize, 8] {
        let topo = Topology::cycle(n).expect("cycles need n >= 3 nodes");
        for seed in 0..3u64 {
            let xs = inputs::random_unique(n, 10_000, seed);
            let one_crash = Some(((seed as usize + n) % n, 2 + seed % 3));
            for crash in [None, one_crash] {
                let mut opts = RunOptions::new()
                    .jitter(15)
                    .with_seed(seed)
                    .record_events(true);
                if let Some((p, rounds)) = crash {
                    opts = opts.crash(p, rounds);
                }
                let thr = run_threaded(&SixColoring, &topo, xs.clone(), &opts);
                diags.extend(check_events("alg1 (runtime)", &topo, &thr.events));
                let thr = run_threaded(&FiveColoringPatched, &topo, xs.clone(), &opts);
                diags.extend(check_events("alg2p (runtime)", &topo, &thr.events));
            }
        }
    }
    diags
}
