//! The network-substrate matrix: every registry algorithm on
//! `ftcolor-net`, plus the race-detector sweep over network runs.
//!
//! [`net_run`] mirrors [`crate::registry`]'s per-name construction
//! (same algorithms, same topologies, same input generators) but
//! executes on the simulated message-passing network, evaluates the
//! per-algorithm oracle (proper coloring / MIS validity / distinct
//! names), and packages the result as a JSON-serializable summary — the
//! payload behind the `ftcolor netsim` CLI subcommand.
//!
//! [`net_race_matrix`] replays the cross-substrate conformance
//! configurations over the network substrate with event recording and
//! runs the `FTC-RT-10x` race rules on the round-commit logs, the same
//! gate the OS-thread runtime passes. The log records the commit-time
//! serialization of each round (see `ftcolor-net`'s crate docs), so a
//! violation here means the *protocol* broke round atomicity, not that
//! two messages interleaved.

use ftcolor_core::decoupled_ring::DecoupledThreeColoring;
use ftcolor_core::mis::{EagerMis, ImpatientMis, LocalMaxMis, MisOutput};
use ftcolor_core::renaming::RankRenaming;
use ftcolor_core::sync_local::{ColeVishkinThree, CvInput};
use ftcolor_core::{
    DeltaSquaredColoring, FastFiveColoring, FastFiveColoringPatched, FiveColoring,
    FiveColoringPatched, PairColor, SixColoring,
};
use ftcolor_model::{inputs, Topology};
use ftcolor_net::{
    run_decoupled_net, run_net, DeliveryTrace, FaultPlan, NetConfig, NetReport, NetStats,
};
use serde::Serialize;

use crate::diag::Diagnostic;
use crate::race::check_events;

/// JSON-ready summary of one algorithm's run on the network substrate.
#[derive(Debug, Clone, Serialize)]
pub struct NetSummary {
    /// Registry name (`alg1`, `alg2p`, …).
    pub alg: String,
    /// Instance size.
    pub n: usize,
    /// Seed driving both RNG streams.
    pub seed: u64,
    /// Flat color index per process (`null` = crashed or stalled).
    pub colors: Vec<Option<u64>>,
    /// Which validity oracle applies: `proper-coloring`, `mis`, or
    /// `termination-only` (documented-flaw entries).
    pub oracle: String,
    /// The oracle's verdict over the returned outputs.
    pub valid: bool,
    /// Every returned color within the declared palette.
    pub palette_ok: bool,
    /// Wait-freedom premise: every non-crashed process returned.
    pub all_correct_returned: bool,
    /// Processes that executed a planned crash.
    pub crashed: Vec<usize>,
    /// Processes still working when the run stopped.
    pub stalled: Vec<usize>,
    /// Maximum rounds committed by any process.
    pub rounds_max: u64,
    /// Logical time at which the run stopped.
    pub time: u64,
    /// Message/event counters.
    pub stats: NetStats,
    /// FNV-1a digest of the delivery trace's canonical JSON (hex) —
    /// two runs with the same seed and plan must agree on this.
    pub trace_digest: String,
    /// Number of recorded sends.
    pub trace_len: usize,
    /// Race diagnostics from the `FTC-RT-10x` rules over the run's
    /// event log (0 expected; empty log for `decoupled-ring`, which has
    /// no registers).
    pub race_diags: usize,
    /// Wire codec the run used. The flat `wire_*` fields are the only
    /// codec-variant part of the summary, so cross-codec diffs can
    /// strip them with one `grep -v '"wire_'`.
    pub wire_codec: String,
    /// Frames serialized to bytes (0 in typed mode).
    pub wire_frames_encoded: u64,
    /// Frames parsed back from bytes (0 in typed mode).
    pub wire_frames_decoded: u64,
    /// Total bytes on the wire (typed mode charges the measured binary
    /// frame sizes without serializing).
    pub wire_bytes: u64,
    /// Encode-buffer requests served from the pool free list.
    pub wire_pool_hits: u64,
    /// Encode-buffer requests that had to allocate.
    pub wire_pool_misses: u64,
}

/// One network run: the summary plus the raw delivery trace (for
/// `--emit-trace` and replay tooling).
#[derive(Debug, Clone)]
pub struct NetRunOutcome {
    /// The JSON-ready summary.
    pub summary: NetSummary,
    /// The full delivery trace.
    pub trace: DeliveryTrace,
}

/// Runs registry entry `name` on the network substrate. Returns `None`
/// for unknown names (see [`crate::registry::SHIPPED`]) and for
/// instances the entry can't build (e.g. `n < 3`).
pub fn net_run(
    name: &str,
    n: usize,
    seed: u64,
    plan: &FaultPlan,
    cfg: &NetConfig,
) -> Option<NetRunOutcome> {
    let ids = |seed: u64| inputs::random_unique(n, 10_000, seed);
    match name {
        "alg1" => {
            let topo = Topology::cycle(n).ok()?;
            let report = run_net(&SixColoring, &topo, ids(seed), plan, cfg);
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                |c: &PairColor| c.flat_index(),
                PairColor::palette_size(2),
                Oracle::ProperColoring,
            ))
        }
        "alg2" => {
            let topo = Topology::cycle(n).ok()?;
            let report = run_net(&FiveColoring, &topo, ids(seed), plan, cfg);
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                |&c| c,
                5,
                Oracle::ProperColoring,
            ))
        }
        "alg2p" => {
            let topo = Topology::cycle(n).ok()?;
            let report = run_net(&FiveColoringPatched, &topo, ids(seed), plan, cfg);
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                |&c| c,
                5,
                Oracle::ProperColoring,
            ))
        }
        "alg3" => {
            let topo = Topology::cycle(n).ok()?;
            let report = run_net(
                &FastFiveColoring,
                &topo,
                inputs::staircase_poly(n),
                plan,
                cfg,
            );
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                |&c| c,
                5,
                Oracle::ProperColoring,
            ))
        }
        "alg3p" => {
            let topo = Topology::cycle(n).ok()?;
            let report = run_net(
                &FastFiveColoringPatched,
                &topo,
                inputs::staircase_poly(n),
                plan,
                cfg,
            );
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                |&c| c,
                5,
                Oracle::ProperColoring,
            ))
        }
        "alg4" => {
            let topo = Topology::cycle(n).ok()?;
            let delta = topo.max_degree() as u64;
            let report = run_net(&DeltaSquaredColoring, &topo, ids(seed), plan, cfg);
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                |c: &PairColor| c.flat_index(),
                PairColor::palette_size(delta),
                Oracle::ProperColoring,
            ))
        }
        "cv" => {
            let topo = Topology::cycle(n).ok()?;
            let xs = ids(seed);
            let alg = ColeVishkinThree::for_max_id(*xs.iter().max()?);
            let cv_inputs: Vec<CvInput> = xs
                .iter()
                .enumerate()
                .map(|(pos, &x)| CvInput { x, pos, n })
                .collect();
            let report = run_net(&alg, &topo, cv_inputs, plan, cfg);
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                |&c| c,
                3,
                Oracle::ProperColoring,
            ))
        }
        "renaming" => {
            let topo = Topology::clique(n).ok()?;
            let report = run_net(
                &RankRenaming,
                &topo,
                inputs::random_unique(n, 100_000, seed),
                plan,
                cfg,
            );
            // Distinct names on a clique are exactly a proper coloring.
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                |&c| c,
                2 * n as u64 - 1,
                Oracle::ProperColoring,
            ))
        }
        "mis-localmax" => {
            let topo = Topology::cycle(n).ok()?;
            let report = run_net(&LocalMaxMis, &topo, ids(seed), plan, cfg);
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                mis_color,
                2,
                Oracle::Mis,
            ))
        }
        "mis-eager" => {
            let topo = Topology::cycle(n).ok()?;
            let report = run_net(&EagerMis, &topo, ids(seed), plan, cfg);
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                mis_color,
                2,
                Oracle::Mis,
            ))
        }
        "mis-impatient" => {
            // Documented E7 flaw: the round writes before it reads, so a
            // verdict reached in the round it is computed is never
            // published and lower-identifier neighbors wait forever. The
            // flaw *is* the exhibit — no validity or termination claim.
            let topo = Topology::cycle(n).ok()?;
            let report = run_net(&ImpatientMis, &topo, ids(seed), plan, cfg);
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                mis_color,
                2,
                Oracle::TerminationOnly,
            ))
        }
        "decoupled-ring" => {
            let topo = Topology::cycle(n).ok()?;
            let alg = DecoupledThreeColoring::new();
            let report = run_decoupled_net(&alg, &topo, ids(seed), plan, cfg);
            Some(summarize(
                name,
                n,
                seed,
                &topo,
                report,
                |&c| c,
                3,
                Oracle::ProperColoring,
            ))
        }
        _ => None,
    }
}

/// Which validity notion applies to an entry's outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Oracle {
    /// Adjacent returned outputs must differ (distinct names on a
    /// clique are the same statement).
    ProperColoring,
    /// Independence (no two adjacent `In`) plus maximality (every `Out`
    /// whose neighbors all returned has an `In` neighbor).
    Mis,
    /// No validity claim — only termination and palette are reported.
    TerminationOnly,
}

impl Oracle {
    fn name(self) -> &'static str {
        match self {
            Oracle::ProperColoring => "proper-coloring",
            Oracle::Mis => "mis",
            Oracle::TerminationOnly => "termination-only",
        }
    }

    /// Evaluates the oracle over flat colors (for MIS: `In = 0`,
    /// `Out = 1`).
    fn holds(self, topo: &Topology, colors: &[Option<u64>]) -> bool {
        match self {
            Oracle::ProperColoring => topo.is_proper_partial_coloring(colors),
            Oracle::TerminationOnly => true,
            Oracle::Mis => {
                let independent = topo
                    .edges()
                    .all(|(a, b)| !(colors[a.index()] == Some(0) && colors[b.index()] == Some(0)));
                let maximal = topo.nodes().all(|p| {
                    colors[p.index()] != Some(1)
                        || topo
                            .neighbors(p)
                            .iter()
                            .any(|q| colors[q.index()].is_none() || colors[q.index()] == Some(0))
                });
                independent && maximal
            }
        }
    }
}

/// Maps an MIS verdict onto the flat palette `{In = 0, Out = 1}`.
#[allow(clippy::trivially_copy_pass_by_ref)]
fn mis_color(o: &MisOutput) -> u64 {
    match o {
        MisOutput::In => 0,
        MisOutput::Out => 1,
    }
}

#[allow(clippy::too_many_arguments)]
fn summarize<O>(
    name: &str,
    n: usize,
    seed: u64,
    topo: &Topology,
    report: NetReport<O>,
    color: impl Fn(&O) -> u64,
    palette: u64,
    oracle: Oracle,
) -> NetRunOutcome {
    let colors: Vec<Option<u64>> = report
        .outputs
        .iter()
        .map(|o| o.as_ref().map(&color))
        .collect();
    let palette_ok = colors.iter().flatten().all(|&c| c < palette);
    let valid = oracle.holds(topo, &colors);
    let crashed: Vec<usize> = report.crashed.iter().map(|p| p.index()).collect();
    let stalled: Vec<usize> = report.stalled.iter().map(|p| p.index()).collect();
    let all_correct_returned = colors
        .iter()
        .enumerate()
        .all(|(i, c)| c.is_some() || crashed.contains(&i));
    let race_diags = if report.events.is_empty() {
        0
    } else {
        check_events(name, topo, &report.events).len()
    };
    let summary = NetSummary {
        alg: name.to_string(),
        n,
        seed,
        colors,
        oracle: oracle.name().to_string(),
        valid,
        palette_ok,
        all_correct_returned,
        crashed,
        stalled,
        rounds_max: report.rounds.iter().copied().max().unwrap_or(0),
        time: report.time,
        stats: report.stats,
        trace_digest: format!("{:016x}", report.trace.digest()),
        trace_len: report.trace.len(),
        race_diags,
        wire_codec: report.codec.name().to_string(),
        wire_frames_encoded: report.wire.frames_encoded,
        wire_frames_decoded: report.wire.frames_decoded,
        wire_bytes: report.wire.bytes_on_wire,
        wire_pool_hits: report.wire.pool_hits,
        wire_pool_misses: report.wire.pool_misses,
    };
    NetRunOutcome {
        summary,
        trace: report.trace,
    }
}

/// The network race-detector matrix: {Alg1, Alg2-patched} × {C5, C8} ×
/// {clean, 1-crash, lossy} × 3 seeds on the network substrate with
/// event recording, every log checked against the `FTC-RT-10x` rules.
/// Empty result = the protocol's round commits all linearize.
pub fn net_race_matrix() -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &n in &[5usize, 8] {
        let topo = Topology::cycle(n).expect("cycles need n >= 3 nodes");
        for seed in 0..3u64 {
            let xs = inputs::random_unique(n, 10_000, seed);
            let plans = [
                FaultPlan::default(),
                FaultPlan::default().with_crash((seed as usize + n) % n, 2 + seed % 3),
                FaultPlan::lossy(0.15),
            ];
            for plan in &plans {
                let cfg = NetConfig::new(seed).record_events(true);
                let rep = run_net(&SixColoring, &topo, xs.clone(), plan, &cfg);
                diags.extend(check_events("alg1 (net)", &topo, &rep.events));
                let rep = run_net(&FiveColoringPatched, &topo, xs.clone(), plan, &cfg);
                diags.extend(check_events("alg2p (net)", &topo, &rep.events));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SHIPPED;

    #[test]
    fn every_registry_entry_runs_on_the_network() {
        for name in SHIPPED {
            let out = net_run(name, 5, 1, &FaultPlan::default(), &NetConfig::new(1))
                .unwrap_or_else(|| panic!("{name} must run on ftcolor-net"));
            let s = &out.summary;
            assert!(s.valid, "{name}: oracle violation on clean network");
            assert!(s.palette_ok, "{name}: palette violation");
            if s.oracle == "termination-only" {
                // The documented E7 flaw (`ImpatientMis`) stalls even on a
                // clean synchronous network: its verdict is computed after
                // the round's write, so it is never published, and
                // lower-identifier neighbors spin on a frozen register.
                // The network substrate reproducing that wait-freedom
                // violation is the point of the exhibit.
                assert!(
                    !s.all_correct_returned,
                    "{name}: the documented E7 stall did not reproduce"
                );
            } else {
                assert!(
                    s.all_correct_returned,
                    "{name}: stalled on a clean network: {:?}",
                    s.stalled
                );
            }
            assert_eq!(s.race_diags, 0, "{name}: race diagnostics on clean run");
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(net_run("nope", 5, 1, &FaultPlan::default(), &NetConfig::new(1)).is_none());
    }

    #[test]
    fn net_race_matrix_is_clean() {
        let diags = net_race_matrix();
        assert!(diags.is_empty(), "unexpected race diagnostics: {diags:?}");
    }
}
