//! The abstract-reachability fixpoint at the heart of `ftcolor certify`.
//!
//! Starting from the domain's abstract initial states, the explorer
//! repeatedly drives the algorithm's real `step` over every
//! `(state, view)` pair, where views are all degree-length tuples over
//! `{⊥} ∪ images(published registers of reachable states)`. New
//! post-step states enlarge the state set; their publishes enlarge the
//! view lattice; the loop runs to a least fixpoint (both sets are
//! finite by the domain's widening). An incremental cursor per state
//! (`seen`) makes each pass enumerate only views that involve at least
//! one register discovered since the state was last expanded, so the
//! fixpoint does no repeated work.
//!
//! Every transition doubles as a checkpoint for the per-step contracts
//! (determinism, SWMR, palette, stability — see the
//! [module docs](super)); a bounded journal of transitions is replayed
//! afterwards, out of recording order, to expose state smuggled around
//! the register abstraction (`FTC-SNAP-002`).

use std::collections::{HashMap, HashSet};

use ftcolor_model::domain::{Projection, ViewDomain};
use ftcolor_model::{Algorithm, Neighborhood, Step};

use super::{CertifyConfig, DiagSink};
use crate::contract::ContractSpec;
use crate::diag::{Diagnostic, RuleId};

/// One recorded transition, for the deferred snapshot-scope replay.
struct JournalEntry<A: Algorithm> {
    pre: A::State,
    view: Vec<Option<A::Reg>>,
    post: A::State,
    out: Option<A::Output>,
}

/// The computed abstract transition system.
pub(crate) struct Explored<A: Algorithm> {
    pub states: Vec<A::State>,
    pub decided: Vec<bool>,
    pub regs: Vec<A::Reg>,
    pub transitions: u64,
    pub widenings: u64,
    pub truncated: bool,
}

/// Runs the exploration fixpoint plus the per-transition checks and the
/// deferred replay; diagnostics land in `sink`.
pub(crate) fn explore<A>(
    alg: &A,
    spec: &ContractSpec<A::Output>,
    domain: &ViewDomain<A>,
    cfg: &CertifyConfig,
    sink: &mut DiagSink,
) -> Explored<A>
where
    A: Algorithm,
    A::State: Eq + std::hash::Hash,
    A::Reg: Eq + std::hash::Hash,
{
    let mut ex = Explorer {
        alg,
        spec,
        domain,
        cfg,
        sink,
        states: Vec::new(),
        index: HashMap::new(),
        decided: Vec::new(),
        seen: Vec::new(),
        regs: Vec::new(),
        reg_set: HashSet::new(),
        probes: Vec::new(),
        journal: Vec::new(),
        transitions: 0,
        widenings: 0,
        truncated: false,
    };
    ex.run();
    ex.replay();
    Explored {
        states: ex.states,
        decided: ex.decided,
        regs: ex.regs,
        transitions: ex.transitions,
        widenings: ex.widenings,
        truncated: ex.truncated,
    }
}

struct Explorer<'a, A: Algorithm> {
    alg: &'a A,
    spec: &'a ContractSpec<A::Output>,
    domain: &'a ViewDomain<A>,
    cfg: &'a CertifyConfig,
    sink: &'a mut DiagSink,
    /// Reachable abstract states, in discovery order.
    states: Vec<A::State>,
    index: HashMap<A::State, usize>,
    decided: Vec<bool>,
    /// Per-state cursor: `Some(k)` = all views over `regs[0..k]` done.
    seen: Vec<Option<usize>>,
    /// The view-side register lattice, in discovery order.
    regs: Vec<A::Reg>,
    reg_set: HashSet<A::Reg>,
    /// Stand-ins for *other* processes: their publishes must be
    /// untouched by any step of this one (SWMR).
    probes: Vec<A::State>,
    journal: Vec<JournalEntry<A>>,
    transitions: u64,
    widenings: u64,
    truncated: bool,
}

impl<A> Explorer<'_, A>
where
    A: Algorithm,
    A::State: Eq + std::hash::Hash,
    A::Reg: Eq + std::hash::Hash,
{
    fn run(&mut self) {
        for s0 in self.domain.init_states() {
            self.probes.push(s0.clone());
            let mut s = s0.clone();
            match self.domain.widen_state(&mut s) {
                Projection::Breach(msg) => {
                    self.sink.push(Diagnostic::new(
                        RuleId::Dom,
                        &self.spec.name,
                        format!("initial state escapes the certified domain: {msg}"),
                    ));
                    continue;
                }
                Projection::Widened => self.widenings += 1,
                Projection::Inside => {}
            }
            self.domain.canonize(&mut s);
            self.insert_state(s, false);
        }
        for r in self.domain.seed_regs() {
            if self.reg_set.insert(r.clone()) {
                self.regs.push(r.clone());
            }
        }

        loop {
            let mut progressed = false;
            let mut si = 0;
            while si < self.states.len() {
                if self.truncated {
                    return;
                }
                if self.decided[si] {
                    si += 1;
                    continue;
                }
                let m = self.regs.len();
                let prev = self.seen[si];
                if prev == Some(m) {
                    si += 1;
                    continue;
                }
                let state = self.states[si].clone();
                self.expand(&state, m, prev);
                self.seen[si] = Some(m);
                progressed = true;
                si += 1;
            }
            if !progressed {
                break;
            }
        }
    }

    /// Enumerates every view tuple over `{⊥} ∪ regs[0..m]` that uses at
    /// least one register beyond the state's previous cursor, and steps
    /// the state under each. Index `0` encodes `⊥`, index `j ≥ 1`
    /// encodes `regs[j - 1]`.
    fn expand(&mut self, state: &A::State, m: usize, prev: Option<usize>) {
        let d = self.domain.degree();
        let symmetric = self.domain.views_are_symmetric();
        let mut idx = vec![0usize; d];
        'odometer: loop {
            let fresh = prev.is_none_or(|k| idx.iter().any(|&i| i > k));
            let canonical = !symmetric || idx.windows(2).all(|w| w[0] <= w[1]);
            if fresh && canonical {
                let view: Vec<Option<A::Reg>> = idx
                    .iter()
                    .map(|&i| (i > 0).then(|| self.regs[i - 1].clone()))
                    .collect();
                self.transition(state, &view);
                if self.truncated {
                    return;
                }
            }
            let mut p = 0;
            loop {
                if p == d {
                    break 'odometer;
                }
                idx[p] += 1;
                if idx[p] <= m {
                    continue 'odometer;
                }
                idx[p] = 0;
                p += 1;
            }
        }
    }

    /// Steps every per-view variant of `state` under `view`, running the
    /// per-transition contract checks around the real step.
    fn transition(&mut self, state: &A::State, view: &[Option<A::Reg>]) {
        for variant in self.domain.variants_for(state, view) {
            if self.transitions >= self.cfg.max_transitions {
                self.truncate(format!(
                    "transition cap {} exhausted before the fixpoint; the domain is not certified",
                    self.cfg.max_transitions
                ));
                return;
            }
            self.transitions += 1;
            let nb = Neighborhood::new(view);

            // FTC-DET-005: two probe runs of the same (state, view) must
            // agree exactly.
            let mut probe_a = variant.clone();
            let out_a = self.alg.step(&mut probe_a, &nb);
            let mut probe_b = variant.clone();
            let out_b = self.alg.step(&mut probe_b, &nb);
            if probe_a != probe_b || out_a != out_b {
                self.sink.push(Diagnostic::new(
                    RuleId::Det,
                    &self.spec.name,
                    format!(
                        "stepping {variant:?} twice under the same view produced \
                         different results ({out_a:?} vs {out_b:?})"
                    ),
                ));
            }

            // FTC-SWMR-001: bracket the real step with publish probes of
            // every other process's initial state — a step that changes
            // what *they* publish wrote a register it doesn't own.
            let pre_probe: Vec<A::Reg> = self.probes.iter().map(|p| self.alg.publish(p)).collect();
            let mut post = variant.clone();
            let out = self.alg.step(&mut post, &nb);
            let post_probe: Vec<A::Reg> = self.probes.iter().map(|p| self.alg.publish(p)).collect();
            if pre_probe != post_probe {
                self.sink.push(Diagnostic::new(
                    RuleId::Swmr,
                    &self.spec.name,
                    format!(
                        "a step of {variant:?} changed what other processes publish \
                         (foreign register write)"
                    ),
                ));
            }

            if self.journal.len() < self.cfg.replay_cap {
                self.journal.push(JournalEntry {
                    pre: variant.clone(),
                    view: view.to_vec(),
                    post: post.clone(),
                    out: match &out {
                        Step::Return(o) => Some(o.clone()),
                        Step::Continue => None,
                    },
                });
            }

            self.settle(&variant, view, post, out);
        }
    }

    /// Post-step bookkeeping: palette and stability checks on deciding
    /// steps, then projection of the successor into the universe.
    fn settle(
        &mut self,
        pre: &A::State,
        view: &[Option<A::Reg>],
        post: A::State,
        out: Step<A::Output>,
    ) {
        match out {
            Step::Return(o) => {
                // FTC-PAL-004.
                if let Some(palette) = self.spec.palette {
                    if let Some(c) = (self.spec.color_of)(&o) {
                        if c >= palette {
                            self.sink.push(Diagnostic::new(
                                RuleId::Pal,
                                &self.spec.name,
                                format!(
                                    "reachable deciding step emits color {c}, outside the \
                                     {palette}-color palette (from {pre:?})"
                                ),
                            ));
                        }
                    }
                }
                // FTC-STAB-003 (a): the deciding step must leave the
                // published register at the value neighbors already saw.
                if self.alg.publish(&post) != self.alg.publish(pre) {
                    self.sink.push(Diagnostic::new(
                        RuleId::Stab,
                        &self.spec.name,
                        format!(
                            "deciding step changed the published register \
                             ({pre:?} -> {post:?}): the deciding value was never visible"
                        ),
                    ));
                }
                // FTC-STAB-003 (b): re-activating a decided process must
                // re-return the same output.
                let nb = Neighborhood::new(view);
                let mut again = post.clone();
                match self.alg.step(&mut again, &nb) {
                    Step::Return(ref o2) if *o2 == o => {}
                    other => {
                        self.sink.push(Diagnostic::new(
                            RuleId::Stab,
                            &self.spec.name,
                            format!(
                                "re-activating decided state {post:?} produced {other:?} \
                                 instead of Return({o:?})"
                            ),
                        ));
                    }
                }
                self.absorb(post, true);
            }
            Step::Continue => self.absorb(post, false),
        }
    }

    /// Projects a successor into the universe and interns it.
    fn absorb(&mut self, mut s: A::State, is_decided: bool) {
        match self.domain.widen_state(&mut s) {
            Projection::Breach(msg) => {
                self.sink.push(Diagnostic::new(
                    RuleId::Dom,
                    &self.spec.name,
                    format!("reachable state escapes the certified domain: {msg}"),
                ));
                return;
            }
            Projection::Widened => self.widenings += 1,
            Projection::Inside => {}
        }
        self.domain.canonize(&mut s);
        self.insert_state(s, is_decided);
    }

    /// Interns a canonical state. A state reached both by deciding and
    /// by continuing steps counts as undecided (the weaker fact).
    fn insert_state(&mut self, s: A::State, is_decided: bool) {
        if let Some(&i) = self.index.get(&s) {
            if !is_decided && self.decided[i] {
                self.decided[i] = false;
            }
            return;
        }
        if self.states.len() >= self.cfg.max_states {
            self.truncate(format!(
                "state cap {} exhausted before the fixpoint; the domain is not certified",
                self.cfg.max_states
            ));
            return;
        }
        let reg = self.alg.publish(&s);
        for img in self.domain.images(&reg) {
            if self.reg_set.insert(img.clone()) {
                self.regs.push(img);
            }
        }
        self.index.insert(s.clone(), self.states.len());
        self.states.push(s);
        self.decided.push(is_decided);
        self.seen.push(None);
    }

    fn truncate(&mut self, msg: String) {
        if !self.truncated {
            self.truncated = true;
            self.sink
                .push(Diagnostic::new(RuleId::Dom, &self.spec.name, msg));
        }
    }

    /// FTC-SNAP-002: replays the journal *out of recording order*. A
    /// step may depend only on `(state, view)`, so re-executing it must
    /// reproduce the recorded successor and outcome no matter what ran
    /// in between. Pass 1 re-executes everything in reverse (driving any
    /// smuggled channel through a different write history); pass 2 then
    /// re-checks every deciding step's output against the recording.
    /// Suppressed entirely when determinism already failed — a nondet
    /// step explains any replay divergence.
    fn replay(&mut self) {
        if self.sink.fired(RuleId::Det) {
            return;
        }
        for e in self.journal.iter().rev() {
            let nb = Neighborhood::new(&e.view);
            let mut s = e.pre.clone();
            let out = match self.alg.step(&mut s, &nb) {
                Step::Return(o) => Some(o),
                Step::Continue => None,
            };
            if s != e.post || out != e.out {
                self.sink.push(Diagnostic::new(
                    RuleId::Snap,
                    &self.spec.name,
                    format!(
                        "replaying a recorded step of {:?} out of order diverged \
                         (got {out:?}, recorded {:?}): the step reads state outside \
                         its view",
                        e.pre, e.out
                    ),
                ));
            }
        }
        for e in &self.journal {
            let Some(recorded) = &e.out else { continue };
            let nb = Neighborhood::new(&e.view);
            let mut s = e.pre.clone();
            if let Step::Return(o) = self.alg.step(&mut s, &nb) {
                if o != *recorded {
                    self.sink.push(Diagnostic::new(
                        RuleId::Snap,
                        &self.spec.name,
                        format!(
                            "a recorded deciding step of {:?} re-returns {o:?} after \
                             unrelated steps ran, but recorded {recorded:?}: the \
                             decision reads state outside its view",
                            e.pre
                        ),
                    ));
                }
            }
        }
    }
}
