//! Registry wiring for `ftcolor certify`: every shipped algorithm bound
//! to its certified abstract domain from `ftcolor_core::domains`, with
//! waivers for the documented exceptions.
//!
//! The waiver policy mirrors the dynamic registry's: a rule an entry
//! knowingly fails still *runs* and its findings are reported, marked
//! waived — never silently skipped. Three kinds of entry need one here:
//!
//! * the MIS candidates waive `FTC-TERM-007`: a process whose neighbor
//!   freezes with the larger identifier and no verdict can never decide
//!   — that solo starvation **is** Property 2.1 (MIS is not wait-free
//!   solvable in this model), the paper's impossibility exhibit;
//! * `mis-impatient` additionally waives `FTC-STAB-003` (the E7
//!   unpublished-verdict flaw, shipped on purpose);
//! * `cv` and `decoupled-ring` waive `FTC-DOM-008`: neither admits a
//!   finite per-process view abstraction (one is a synchronized LOCAL
//!   algorithm whose state carries global round structure, the other
//!   doesn't implement the register-model `Algorithm` trait at all), so
//!   they carry an explicit *uncertified* finding instead of a silent
//!   skip; the dynamic analyzer covers both.

use ftcolor_core::domains;
use ftcolor_core::mis::{EagerMis, ImpatientMis, LocalMaxMis, MisOutput};
use ftcolor_core::renaming::RankRenaming;
use ftcolor_core::{
    DeltaSquaredColoring, FastFiveColoring, FastFiveColoringPatched, FiveColoring,
    FiveColoringPatched, PairColor, SixColoring,
};
use ftcolor_model::domain::ViewDomain;
use ftcolor_model::Algorithm;

use super::{certify_algorithm, CertStats, CertifyConfig};
use crate::contract::ContractSpec;
use crate::diag::{json_str, Diagnostic, RuleId};
use crate::linter::apply_waivers;
use crate::registry::SHIPPED;

/// The certification outcome for one registry entry.
#[derive(Debug)]
pub struct CertReport {
    /// The registry name.
    pub name: &'static str,
    /// The domain's documented abstraction argument (empty for
    /// uncertified entries).
    pub note: String,
    /// All findings, waived ones included (and marked).
    pub diagnostics: Vec<Diagnostic>,
    /// Size and outcome counters (all zero for uncertified entries).
    pub stats: CertStats,
}

impl CertReport {
    /// Findings that count against the CI gate.
    pub fn unwaived(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.waived)
    }

    /// `true` when no unwaived finding fired.
    pub fn clean(&self) -> bool {
        self.unwaived().next().is_none()
    }
}

/// Maps an MIS verdict onto the two-"color" palette {In = 0, Out = 1}.
#[allow(clippy::trivially_copy_pass_by_ref)]
fn mis_color(o: &MisOutput) -> Option<u64> {
    Some(match o {
        MisOutput::In => 0,
        MisOutput::Out => 1,
    })
}

/// Why the MIS candidates waive the static termination rule.
const MIS_TERM_WAIVER: &str =
    "solo starvation is Property 2.1: a process whose neighbor freezes holding \
     the larger identifier and no verdict can never decide — MIS is not \
     wait-free solvable in this model, which is exactly what these candidates \
     exhibit";

fn certified<A>(
    name: &'static str,
    alg: &A,
    spec: ContractSpec<A::Output>,
    domain: ViewDomain<A>,
    cfg: &CertifyConfig,
) -> CertReport
where
    A: Algorithm,
    A::State: Eq + std::hash::Hash,
    A::Reg: Eq + std::hash::Hash,
{
    let cert = certify_algorithm(alg, &spec, &domain, cfg);
    CertReport {
        name,
        note: domain.note_text().to_string(),
        diagnostics: cert.diagnostics,
        stats: cert.stats,
    }
}

/// An entry with no certifiable domain: an explicit, waived
/// `FTC-DOM-008` finding instead of a silent skip.
fn uncertified(name: &'static str, reason: &str) -> CertReport {
    let spec: ContractSpec<u64> = ContractSpec::new(name).waive(RuleId::Dom, reason);
    let mut diagnostics = vec![Diagnostic::new(
        RuleId::Dom,
        name,
        "no certified abstract view domain: the algorithm is not statically certified",
    )];
    apply_waivers(&mut diagnostics, &spec);
    CertReport {
        name,
        note: String::new(),
        diagnostics,
        stats: CertStats::default(),
    }
}

/// Certifies the named registry entry over its declared domain.
/// `colors` bounds the candidate-color lattice (5 in CI, matching the
/// paper's palette claims). Returns `None` for unknown names.
pub fn certify_alg(name: &str, colors: u64, cfg: &CertifyConfig) -> Option<CertReport> {
    let pair_palette = |c: &PairColor| Some(c.flat_index());
    let report = match name {
        "alg1" => certified(
            "alg1",
            &SixColoring,
            ContractSpec::new("alg1").palette(PairColor::palette_size(2), pair_palette),
            domains::pair_domain(),
            cfg,
        ),
        "alg2" => certified(
            "alg2",
            &FiveColoring,
            ContractSpec::new("alg2").palette(5, |&c: &u64| Some(c)),
            domains::five_coloring_domain(colors),
            cfg,
        ),
        "alg2p" => certified(
            "alg2p",
            &FiveColoringPatched,
            ContractSpec::new("alg2p").palette(5, |&c: &u64| Some(c)),
            domains::five_coloring_patched_domain(colors),
            cfg,
        ),
        "alg3" => certified(
            "alg3",
            &FastFiveColoring,
            ContractSpec::new("alg3").palette(5, |&c: &u64| Some(c)),
            domains::fast_five_domain(colors, 2),
            cfg,
        ),
        "alg3p" => certified(
            "alg3p",
            &FastFiveColoringPatched,
            ContractSpec::new("alg3p").palette(5, |&c: &u64| Some(c)),
            domains::fast_five_patched_domain(colors, 2),
            cfg,
        ),
        "alg4" => certified(
            "alg4",
            &DeltaSquaredColoring,
            // The cycle instance (Δ = 2), where the Δ²-palette claim is
            // (Δ+1)(Δ+2)/2 = 6; higher-degree instances are covered
            // dynamically (the domain is per-degree).
            ContractSpec::new("alg4").palette(PairColor::palette_size(2), pair_palette),
            domains::pair_domain(),
            cfg,
        ),
        "cv" => uncertified(
            "cv",
            "the Cole–Vishkin baseline is a synchronous LOCAL algorithm run under \
             an α-synchronizer: its state carries global round structure \
             (position, round counter, previous colors over n positions), which \
             admits no finite per-process view abstraction; the dynamic analyzer \
             covers it",
        ),
        "renaming" => certified(
            "renaming",
            &RankRenaming,
            ContractSpec::new("renaming").palette(5, |&c: &u64| Some(c)),
            domains::renaming_domain(3),
            cfg,
        ),
        "mis-localmax" => certified(
            "mis-localmax",
            &LocalMaxMis,
            ContractSpec::new("mis-localmax")
                .palette(2, mis_color)
                .waive(RuleId::Term, MIS_TERM_WAIVER),
            domains::mis_domain(),
            cfg,
        ),
        "mis-eager" => certified(
            "mis-eager",
            &EagerMis,
            ContractSpec::new("mis-eager")
                .palette(2, mis_color)
                .waive(RuleId::Term, MIS_TERM_WAIVER),
            domains::mis_domain(),
            cfg,
        ),
        "mis-impatient" => certified(
            "mis-impatient",
            &ImpatientMis,
            ContractSpec::new("mis-impatient")
                .palette(2, mis_color)
                .waive(RuleId::Term, MIS_TERM_WAIVER)
                .waive(
                    RuleId::Stab,
                    "documented E7 flaw: ImpatientMis commits a verdict computed in \
                     the same round, so the deciding register value is never \
                     published — exactly the unpublished-verdict failure the repo \
                     exhibits on purpose",
                ),
            domains::mis_domain(),
            cfg,
        ),
        "decoupled-ring" => uncertified(
            "decoupled-ring",
            "the DECOUPLED ring coloring doesn't implement the register-model \
             Algorithm trait (its decide() reads a knowledge ball, not \
             registers), so there is no step function to drive over a view \
             domain; the dynamic analyzer covers the translatable rules",
        ),
        _ => return None,
    };
    Some(report)
}

/// Certifies every registry entry, in [`SHIPPED`] order.
pub fn certify_all(colors: u64, cfg: &CertifyConfig) -> Vec<CertReport> {
    SHIPPED
        .into_iter()
        .map(|name| certify_alg(name, colors, cfg).expect("registry names are exhaustive"))
        .collect()
}

/// Renders certification reports as a deterministic JSON array (stable
/// key order, no timestamps or wall-times — two runs over the same tree
/// must be byte-identical).
pub fn render_cert_json(reports: &[CertReport]) -> String {
    let body: Vec<String> = reports
        .iter()
        .map(|r| {
            let s = &r.stats;
            let solo = match s.solo_bound {
                Some(b) => b.to_string(),
                None => "null".into(),
            };
            let diags: Vec<String> = r.diagnostics.iter().map(Diagnostic::to_json).collect();
            format!(
                "{{\"alg\":{},\"note\":{},\"stats\":{{\"reachable_states\":{},\
                 \"decided_states\":{},\"transitions\":{},\"view_regs\":{},\
                 \"widenings\":{},\"solo_bound\":{},\"truncated\":{}}},\
                 \"diagnostics\":[{}]}}",
                json_str(r.name),
                json_str(&r.note),
                s.reachable_states,
                s.decided_states,
                s.transitions,
                s.view_regs,
                s.widenings,
                solo,
                s.truncated,
                diags.join(",")
            )
        })
        .collect();
    format!("[{}]", body.join(","))
}
