//! `ftcolor certify` — static contract certification by per-process
//! abstract interpretation over the view lattice.
//!
//! The dynamic linter ([`crate::linter`]) observes concrete executions,
//! so its guarantees are only as strong as the schedules it samples. The
//! certifier closes that gap for the rules that are *local*: a process's
//! behavior in one round depends only on its own state and the register
//! values it reads, so driving the algorithm's real
//! [`Algorithm::step`] over **every**
//! `(state, view)` pair of a certified finite abstraction — a
//! [`ViewDomain`] — yields the complete local transition system, and a
//! property proved on that graph holds in every concrete execution the
//! domain over-approximates, crashes and adversarial scheduling
//! included.
//!
//! ## What one certification run does
//!
//! 1. **Explore** ([`explore`]): starting from the domain's abstract
//!    initial states, compute the least fixpoint of
//!    `step` under all views over `{⊥} ∪ images(reachable publishes)`.
//!    Each transition is simultaneously checked for determinism
//!    (`FTC-DET-005`, a double probe), foreign register writes
//!    (`FTC-SWMR-001`, publish-probing all initial states around the
//!    step), palette escapes (`FTC-PAL-004`), and decision stability
//!    (`FTC-STAB-003`: the deciding step's register must not regress,
//!    and re-stepping the decided state must re-return the same output).
//!    A bounded journal of transitions is replayed afterwards to expose
//!    state smuggled around the register abstraction (`FTC-SNAP-002`).
//! 2. **Terminate** ([`term`]): from every reachable undecided state,
//!    run the process solo against every *frozen* view; a lasso (state
//!    revisit) before a decision is a wait-freedom violation no finite
//!    schedule sample can prove absent (`FTC-TERM-007`). The maximum
//!    number of steps to a decision over all such runs is a
//!    machine-checked solo bound.
//! 3. **Contain**: any state escaping the domain (widening breach or a
//!    blown exploration cap) is `FTC-DOM-008` — reported, never
//!    silently absorbed.
//!
//! The [`registry`] wires every shipped algorithm to its certified
//! domain from `ftcolor_core::domains`, with waivers for the documented
//! exceptions (the MIS candidates genuinely livelock solo — that is
//! Property 2.1, the paper's impossibility exhibit — and the synchronous
//! baselines have no certifiable per-process domain).

pub mod explore;
pub mod registry;
pub mod term;

use std::collections::HashMap;

use ftcolor_model::domain::ViewDomain;
use ftcolor_model::Algorithm;

use crate::contract::ContractSpec;
use crate::diag::{Diagnostic, RuleId};
use crate::linter::apply_waivers;

/// Exploration budgets and check knobs for one certification run.
#[derive(Debug, Clone)]
pub struct CertifyConfig {
    /// Abstract-state cap; exceeding it is an `FTC-DOM-008` finding.
    pub max_states: usize,
    /// Transition cap; exceeding it is an `FTC-DOM-008` finding.
    pub max_transitions: u64,
    /// How many transitions the snapshot-scope replay journal records.
    pub replay_cap: usize,
    /// Solo-run fuel for the termination pass (a lasso almost always
    /// triggers first; fuel is the backstop for state-growing runs).
    pub term_fuel: u64,
    /// Per-rule diagnostic cap (first findings win; the rest are
    /// counted, not stored).
    pub max_per_rule: usize,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            max_states: 100_000,
            max_transitions: 1_000_000_000,
            replay_cap: 4096,
            term_fuel: 512,
            max_per_rule: 4,
        }
    }
}

/// Size and outcome counters for one certification run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CertStats {
    /// Distinct abstract states reached (decided states included).
    pub reachable_states: usize,
    /// Reachable states that are post-decision.
    pub decided_states: usize,
    /// Abstract transitions executed during exploration.
    pub transitions: u64,
    /// Distinct view-side register values in the fixpoint lattice.
    pub view_regs: usize,
    /// Post-step states projected back into the universe by widening.
    pub widenings: u64,
    /// Machine-checked solo bound: the maximum steps-to-decision over
    /// every solo run from every reachable state (`None` when the
    /// termination pass found a livelock or was skipped).
    pub solo_bound: Option<u64>,
    /// `true` when a cap fired and the transition system is incomplete
    /// (always accompanied by an `FTC-DOM-008` diagnostic).
    pub truncated: bool,
}

/// The result of certifying one algorithm over one domain.
pub struct Certification<A: Algorithm> {
    /// Every reachable abstract state, in discovery order.
    pub states: Vec<A::State>,
    /// `decided[i]` — `states[i]` is only reached by deciding steps.
    pub decided: Vec<bool>,
    /// All findings, waived ones included (and marked).
    pub diagnostics: Vec<Diagnostic>,
    /// Size and outcome counters.
    pub stats: CertStats,
}

impl<A: Algorithm> Certification<A>
where
    A::State: Eq,
{
    /// `true` when `s` is in the statically computed reachable set.
    /// (Callers projecting concrete states should go through
    /// [`ViewDomain::project_state`] first.)
    pub fn contains(&self, s: &A::State) -> bool {
        self.states.iter().any(|t| t == s)
    }

    /// Diagnostics that count against the gate.
    pub fn unwaived(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.waived)
    }
}

/// A per-rule-capped diagnostic accumulator (capping at emission time
/// keeps pathological mutants from allocating millions of findings).
pub(crate) struct DiagSink {
    diags: Vec<Diagnostic>,
    counts: HashMap<RuleId, u64>,
    cap: usize,
}

impl DiagSink {
    pub(crate) fn new(cap: usize) -> Self {
        DiagSink {
            diags: Vec::new(),
            counts: HashMap::new(),
            cap,
        }
    }

    pub(crate) fn push(&mut self, d: Diagnostic) {
        let n = self.counts.entry(d.rule).or_insert(0);
        *n += 1;
        if *n as usize <= self.cap {
            self.diags.push(d);
        }
    }

    pub(crate) fn fired(&self, rule: RuleId) -> bool {
        self.counts.contains_key(&rule)
    }

    fn into_diags(self) -> Vec<Diagnostic> {
        self.diags
    }
}

/// Certifies `alg` over `domain`: explores the complete abstract local
/// transition system, checks every per-step contract on every
/// transition, runs the solo-termination pass, and returns the reachable
/// set plus all diagnostics (with `spec`'s waivers applied).
pub fn certify_algorithm<A>(
    alg: &A,
    spec: &ContractSpec<A::Output>,
    domain: &ViewDomain<A>,
    cfg: &CertifyConfig,
) -> Certification<A>
where
    A: Algorithm,
    A::State: Eq + std::hash::Hash,
    A::Reg: Eq + std::hash::Hash,
{
    let mut sink = DiagSink::new(cfg.max_per_rule);
    let explored = explore::explore(alg, spec, domain, cfg, &mut sink);

    let solo_bound = if explored.truncated {
        None // an incomplete graph proves nothing about termination
    } else {
        term::term_pass(alg, spec, domain, &explored, cfg, &mut sink)
    };

    let stats = CertStats {
        reachable_states: explored.states.len(),
        decided_states: explored.decided.iter().filter(|&&d| d).count(),
        transitions: explored.transitions,
        view_regs: explored.regs.len(),
        widenings: explored.widenings,
        solo_bound,
        truncated: explored.truncated,
    };

    let mut diagnostics = sink.into_diags();
    apply_waivers(&mut diagnostics, spec);

    Certification {
        states: explored.states,
        decided: explored.decided,
        diagnostics,
        stats,
    }
}
