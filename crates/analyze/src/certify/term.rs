//! `FTC-TERM-007` — the static solo-termination pass.
//!
//! The dynamic wait-freedom rule (`FTC-WF-006`) runs each process solo
//! *from its initial state* and checks it decides within the declared
//! bound. That misses algorithms that terminate from a cold start but
//! can be driven — by real concurrency — into a *reachable* state from
//! which a solo run never decides (the crash-tolerance failure mode the
//! paper's model makes primary: every other process may crash at any
//! point, and the survivor must still finish).
//!
//! This pass closes that hole: for **every** reachable undecided
//! abstract state and **every** frozen view over the final register
//! lattice (a crashed world never writes again, so the view really is
//! frozen), iterate `step` until the process decides or revisits a
//! state. A revisit without a decision is a lasso — a solo livelock no
//! finite schedule sample can prove absent. Because widening keeps the
//! state space finite, every non-deciding run lassoes; the fuel bound
//! is only a backstop. The maximum steps-to-decision over all runs is
//! returned as a machine-checked solo bound.

use ftcolor_model::domain::{Projection, ViewDomain};
use ftcolor_model::{Algorithm, Neighborhood, Step};

use super::explore::Explored;
use super::{CertifyConfig, DiagSink};
use crate::contract::ContractSpec;
use crate::diag::{Diagnostic, RuleId};

/// Outcome of one solo run under a frozen view.
enum Solo {
    Decided(u64),
    Lasso(u64),
    FuelOut,
    Breach(String),
}

/// Runs the termination pass over the explored transition system.
/// Returns the machine-checked solo bound, or `None` when any solo run
/// fails to decide.
pub(crate) fn term_pass<A>(
    alg: &A,
    spec: &ContractSpec<A::Output>,
    domain: &ViewDomain<A>,
    ex: &Explored<A>,
    cfg: &CertifyConfig,
    sink: &mut DiagSink,
) -> Option<u64>
where
    A: Algorithm,
    A::State: Eq,
{
    let d = domain.degree();
    let symmetric = domain.views_are_symmetric();
    let m = ex.regs.len();
    let mut worst: u64 = 0;
    let mut livelock = false;

    for (si, s) in ex.states.iter().enumerate() {
        if ex.decided[si] {
            continue;
        }
        let mut idx = vec![0usize; d];
        'odometer: loop {
            if !symmetric || idx.windows(2).all(|w| w[0] <= w[1]) {
                let view: Vec<Option<A::Reg>> = idx
                    .iter()
                    .map(|&i| (i > 0).then(|| ex.regs[i - 1].clone()))
                    .collect();
                for variant in domain.variants_for(s, &view) {
                    match solo_run(alg, domain, variant, &view, cfg.term_fuel) {
                        Solo::Decided(steps) => worst = worst.max(steps),
                        Solo::Lasso(steps) => {
                            livelock = true;
                            sink.push(Diagnostic::new(
                                RuleId::Term,
                                &spec.name,
                                format!(
                                    "solo run from reachable state {s:?} under frozen view \
                                     {view:?} revisits its state after {steps} steps without \
                                     deciding (solo livelock)"
                                ),
                            ));
                        }
                        Solo::FuelOut => {
                            livelock = true;
                            sink.push(Diagnostic::new(
                                RuleId::Term,
                                &spec.name,
                                format!(
                                    "solo run from reachable state {s:?} under frozen view \
                                     {view:?} did not decide within {} steps",
                                    cfg.term_fuel
                                ),
                            ));
                        }
                        Solo::Breach(msg) => {
                            sink.push(Diagnostic::new(
                                RuleId::Dom,
                                &spec.name,
                                format!("solo run escapes the certified domain: {msg}"),
                            ));
                        }
                    }
                }
            }
            let mut p = 0;
            loop {
                if p == d {
                    break 'odometer;
                }
                idx[p] += 1;
                if idx[p] <= m {
                    continue 'odometer;
                }
                idx[p] = 0;
                p += 1;
            }
        }
    }

    if livelock {
        None
    } else {
        Some(worst)
    }
}

/// Iterates `step` under a frozen view until a decision, a state
/// revisit, a widening breach, or fuel exhaustion. States are widened
/// (so the trail stays inside the finite universe) but *not*
/// canonicalized — a stored last-view must keep its concrete value, or
/// frozen-view comparisons would be falsified.
fn solo_run<A>(
    alg: &A,
    domain: &ViewDomain<A>,
    start: A::State,
    view: &[Option<A::Reg>],
    fuel: u64,
) -> Solo
where
    A: Algorithm,
    A::State: Eq,
{
    let nb = Neighborhood::new(view);
    let mut cur = start;
    let mut trail: Vec<A::State> = Vec::new();
    let mut steps: u64 = 0;
    loop {
        if trail.contains(&cur) {
            return Solo::Lasso(steps);
        }
        trail.push(cur.clone());
        steps += 1;
        match alg.step(&mut cur, &nb) {
            Step::Return(_) => return Solo::Decided(steps),
            Step::Continue => {
                if let Projection::Breach(msg) = domain.widen_state(&mut cur) {
                    return Solo::Breach(msg);
                }
                if steps >= fuel {
                    return Solo::FuelOut;
                }
            }
        }
    }
}
