//! `ftcolor-analyze` — static/dynamic analysis for the fault-tolerant
//! coloring codebase, on both substrates:
//!
//! 1. **Contract linter** ([`linter`]): runs any
//!    [`Algorithm`](ftcolor_model::Algorithm) through the abstract
//!    executor's observation hooks and flags violations of the paper's
//!    §2 model contract — SWMR register discipline, snapshot scope
//!    (hidden-state smuggling), decision stability, palette bounds,
//!    step determinism, and a wait-freedom audit of solo executions —
//!    as structured, compiler-lint-style diagnostics ([`diag`]).
//! 2. **Race detector** ([`race`]): consumes the threaded runtime's
//!    register event log (`ftcolor_runtime::RtEvent`) and verifies
//!    post-hoc that every executed round linearizes as one atomic local
//!    snapshot — locks in global index order, contiguous write+read
//!    windows, an acyclic per-register round order, and vector-clock
//!    happens-before coverage of all cross-process accesses.
//! 3. **Static certifier** ([`certify`]): drives each algorithm's real
//!    `step` over an exhaustively enumerated abstract view domain
//!    (`ftcolor_model::domain::ViewDomain`) and proves the per-step
//!    contracts — plus solo termination from *every* reachable state
//!    (`FTC-TERM-007`) and domain containment (`FTC-DOM-008`) — over
//!    the complete local transition system, with no schedule sampling
//!    gap.
//!
//! The [`registry`] wires every shipped algorithm to its declared
//! [`contract`], so the `ftcolor analyze` CLI, `tests/analyze.rs`, and
//! the CI gate all agree on what "clean" means. Violations of a rule an
//! entry *documents* (e.g. the E7 `ImpatientMis` flaw) are reported but
//! waived, never silently skipped.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod certify;
pub mod contract;
pub mod diag;
pub mod linter;
pub mod netmat;
pub mod race;
pub mod registry;

pub use certify::registry::{certify_alg, certify_all, render_cert_json, CertReport};
pub use certify::{certify_algorithm, CertStats, Certification, CertifyConfig};
pub use contract::{ContractSpec, Waiver};
pub use diag::{render_json, Diagnostic, RuleId};
pub use linter::{lint_algorithm, LintConfig};
pub use netmat::{net_race_matrix, net_run, NetRunOutcome, NetSummary};
pub use race::check_events;
pub use registry::{analyze_alg, analyze_all, race_matrix, AlgReport, SHIPPED};
