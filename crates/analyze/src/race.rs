//! The happens-before race detector for the OS-thread runtime.
//!
//! Input: the register event log a [`run_threaded`] run records when
//! [`RunOptions::record_events`] is set — every lock/write/read/unlock,
//! globally sequenced (see [`RtEvent`]). Output: diagnostics proving or
//! refuting that every round executed as one **atomic local immediate
//! snapshot** (§2.1):
//!
//! * **`FTC-RT-101` (lock order)** — within a round, locks must be
//!   acquired in strictly ascending global register-index order, and
//!   the locked set must be exactly the closed neighborhood `N[p]`.
//! * **`FTC-RT-102` (snapshot atomicity)** — the write and neighbor
//!   reads of a round must all happen while that round holds the
//!   register's lock, with no foreign access interleaved into the
//!   lock window (a torn read otherwise); exactly one write, to the
//!   process's own register, preceding its reads.
//! * **`FTC-RT-103` (linearizability)** — order rounds by their lock
//!   acquisition on each shared register; the union of these
//!   per-register orders must be acyclic, i.e. the rounds admit a
//!   global linearization as atomic snapshots.
//! * **`FTC-RT-104` (happens-before races)** — replay the log through
//!   per-process vector clocks where lock acquisition synchronizes
//!   with the previous unlock; two accesses to the same register with
//!   a write among them must be HB-ordered, else they race.
//!
//! A correct log from `run_threaded` passes all four by construction;
//! the negative fixtures in `tests/analyze.rs` are synthetic logs
//! (lockless writes, interleaved windows, cyclic acquisition orders)
//! since the runtime itself cannot be made racy without edits.
//!
//! [`run_threaded`]: ftcolor_runtime::run_threaded
//! [`RunOptions::record_events`]: ftcolor_runtime::RunOptions::record_events

use std::collections::{HashMap, HashSet};

use ftcolor_model::Topology;
use ftcolor_runtime::{RtEvent, RtEventKind};

use crate::diag::{Diagnostic, RuleId};

/// A vector clock over `n` processes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct VClock(Vec<u64>);

impl VClock {
    fn new(n: usize) -> Self {
        VClock(vec![0; n])
    }

    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≤ other` pointwise: every event `self` knows of
    /// happens-before `other`'s current point.
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

/// Checks a runtime event log against the atomic-snapshot contract.
///
/// `alg_name` labels the diagnostics; `topo` supplies the expected lock
/// set (closed neighborhood) of each process. The log must be sorted by
/// [`RtEvent::seq`] (as [`ThreadReport::events`] is).
///
/// [`ThreadReport::events`]: ftcolor_runtime::ThreadReport::events
pub fn check_events(alg_name: &str, topo: &Topology, events: &[RtEvent]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = topo.len();

    check_lock_order_and_shape(alg_name, topo, events, &mut diags);
    check_atomic_windows(alg_name, events, &mut diags);
    check_linearization(alg_name, events, &mut diags);
    check_vector_clock_races(alg_name, n, events, &mut diags);
    diags
}

/// Per (process, round) key.
type RoundKey = (usize, u64);

/// FTC-RT-101: per round, lock acquisitions strictly ascend and cover
/// exactly the closed neighborhood.
fn check_lock_order_and_shape(
    alg_name: &str,
    topo: &Topology,
    events: &[RtEvent],
    diags: &mut Vec<Diagnostic>,
) {
    let mut locks: HashMap<RoundKey, Vec<usize>> = HashMap::new();
    for e in events {
        if e.kind == RtEventKind::Lock {
            locks
                .entry((e.process, e.round))
                .or_default()
                .push(e.register);
        }
    }
    let mut keys: Vec<&RoundKey> = locks.keys().collect();
    keys.sort();
    for key in keys {
        let acquired = &locks[key];
        let (p, round) = *key;
        if !acquired.windows(2).all(|w| w[0] < w[1]) {
            diags.push(
                Diagnostic::new(
                    RuleId::RtLockOrder,
                    alg_name,
                    format!(
                        "round {round} of process {p} acquired locks in order \
                         {acquired:?}, not ascending global index order — deadlock-prone"
                    ),
                )
                .process(p)
                .time(round),
            );
        }
        let mut expected: Vec<usize> = std::iter::once(p)
            .chain(
                topo.neighbors(ftcolor_model::ProcessId(p))
                    .iter()
                    .map(|q| q.index()),
            )
            .collect();
        expected.sort_unstable();
        let mut got = acquired.clone();
        got.sort_unstable();
        got.dedup();
        if got != expected {
            diags.push(
                Diagnostic::new(
                    RuleId::RtLockOrder,
                    alg_name,
                    format!(
                        "round {round} of process {p} locked registers {got:?}, \
                         expected its closed neighborhood {expected:?}"
                    ),
                )
                .process(p)
                .time(round),
            );
        }
    }
}

/// FTC-RT-102: per register, lock windows are non-interleaved and every
/// access happens inside the accessor's own window; within a round the
/// write precedes the reads and targets the own register only.
fn check_atomic_windows(alg_name: &str, events: &[RtEvent], diags: &mut Vec<Diagnostic>) {
    // Who currently holds each register's lock window.
    let mut holder: HashMap<usize, RoundKey> = HashMap::new();
    // Whether the own-register write of a round has been seen.
    let mut wrote_own: HashSet<RoundKey> = HashSet::new();

    for e in events {
        let key = (e.process, e.round);
        match e.kind {
            RtEventKind::Lock => {
                if let Some(&other) = holder.get(&e.register) {
                    diags.push(
                        Diagnostic::new(
                            RuleId::RtAtomicity,
                            alg_name,
                            format!(
                                "register {} locked by round {} of process {} while \
                                 round {} of process {} still holds it — torn snapshot window",
                                e.register, e.round, e.process, other.1, other.0
                            ),
                        )
                        .process(e.process)
                        .time(e.round),
                    );
                }
                holder.insert(e.register, key);
            }
            RtEventKind::Unlock => {
                if holder.get(&e.register) == Some(&key) {
                    holder.remove(&e.register);
                }
            }
            RtEventKind::Write => {
                if e.register != e.process {
                    diags.push(
                        Diagnostic::new(
                            RuleId::RtAtomicity,
                            alg_name,
                            format!(
                                "round {} of process {} wrote register {} — not its own",
                                e.round, e.process, e.register
                            ),
                        )
                        .process(e.process)
                        .time(e.round),
                    );
                }
                if holder.get(&e.register) != Some(&key) {
                    diags.push(
                        Diagnostic::new(
                            RuleId::RtAtomicity,
                            alg_name,
                            format!(
                                "round {} of process {} wrote register {} without \
                                 holding its lock",
                                e.round, e.process, e.register
                            ),
                        )
                        .process(e.process)
                        .time(e.round),
                    );
                }
                wrote_own.insert(key);
            }
            RtEventKind::Read => {
                if holder.get(&e.register) != Some(&key) {
                    diags.push(
                        Diagnostic::new(
                            RuleId::RtAtomicity,
                            alg_name,
                            format!(
                                "round {} of process {} read register {} without \
                                 holding its lock — torn read",
                                e.round, e.process, e.register
                            ),
                        )
                        .process(e.process)
                        .time(e.round),
                    );
                }
                if e.register != e.process && !wrote_own.contains(&key) {
                    diags.push(
                        Diagnostic::new(
                            RuleId::RtAtomicity,
                            alg_name,
                            format!(
                                "round {} of process {} read register {} before \
                                 writing its own — not a local immediate snapshot",
                                e.round, e.process, e.register
                            ),
                        )
                        .process(e.process)
                        .time(e.round),
                    );
                }
            }
        }
    }
}

/// FTC-RT-103: the per-register orders of rounds (by lock acquisition)
/// union into a DAG — i.e. the rounds linearize as atomic snapshots.
fn check_linearization(alg_name: &str, events: &[RtEvent], diags: &mut Vec<Diagnostic>) {
    // Edges round -> round: consecutive lock holders of each register.
    let mut last_on_reg: HashMap<usize, RoundKey> = HashMap::new();
    let mut edges: HashMap<RoundKey, HashSet<RoundKey>> = HashMap::new();
    let mut indegree: HashMap<RoundKey, usize> = HashMap::new();
    for e in events {
        if e.kind != RtEventKind::Lock {
            continue;
        }
        let key = (e.process, e.round);
        indegree.entry(key).or_insert(0);
        if let Some(&prev) = last_on_reg.get(&e.register) {
            if prev != key && edges.entry(prev).or_default().insert(key) {
                *indegree.entry(key).or_insert(0) += 1;
            }
        }
        last_on_reg.insert(e.register, key);
    }

    // Kahn's algorithm; leftovers form at least one cycle.
    let mut queue: Vec<RoundKey> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&k, _)| k)
        .collect();
    let mut seen = 0usize;
    while let Some(k) = queue.pop() {
        seen += 1;
        if let Some(next) = edges.get(&k) {
            // Cloned to release the borrow; graphs here are tiny.
            for m in next.clone() {
                let d = indegree.get_mut(&m).expect("edge target registered");
                *d -= 1;
                if *d == 0 {
                    queue.push(m);
                }
            }
        }
    }
    if seen < indegree.len() {
        let mut stuck: Vec<RoundKey> = indegree
            .iter()
            .filter(|(_, &d)| d > 0)
            .map(|(&k, _)| k)
            .collect();
        stuck.sort_unstable();
        let (p, round) = stuck[0];
        diags.push(
            Diagnostic::new(
                RuleId::RtLinearization,
                alg_name,
                format!(
                    "per-register round orders contain a cycle involving round \
                     {round} of process {p} (+{} more rounds) — the execution \
                     admits no linearization into atomic snapshots",
                    stuck.len() - 1
                ),
            )
            .process(p)
            .time(round),
        );
    }
}

/// FTC-RT-104: vector-clock race detection. Lock acquisition joins the
/// clock left at the register's last unlock; conflicting accesses
/// (write/write, write/read) must then be HB-ordered.
fn check_vector_clock_races(
    alg_name: &str,
    n: usize,
    events: &[RtEvent],
    diags: &mut Vec<Diagnostic>,
) {
    let mut proc_clock: Vec<VClock> = (0..n).map(|_| VClock::new(n)).collect();
    let mut reg_clock: HashMap<usize, VClock> = HashMap::new();
    let mut last_write: HashMap<usize, (usize, VClock)> = HashMap::new();
    let mut reads_since_write: HashMap<usize, VClock> = HashMap::new();
    let mut started: HashSet<RoundKey> = HashSet::new();

    for e in events {
        if e.process >= n {
            continue; // malformed synthetic logs: ignore unknown processes
        }
        if started.insert((e.process, e.round)) {
            // First event of this round: a new point in p's timeline.
            proc_clock[e.process].0[e.process] += 1;
        }
        match e.kind {
            RtEventKind::Lock => {
                // Synchronizes-with the previous unlock of this register.
                if let Some(rc) = reg_clock.get(&e.register) {
                    proc_clock[e.process].join(&rc.clone());
                }
            }
            RtEventKind::Unlock => {
                reg_clock.insert(e.register, proc_clock[e.process].clone());
            }
            RtEventKind::Write => {
                let cur = &proc_clock[e.process];
                let ordered_after_write = last_write
                    .get(&e.register)
                    .is_none_or(|(wp, wc)| *wp == e.process || wc.le(cur));
                let ordered_after_reads = reads_since_write
                    .get(&e.register)
                    .is_none_or(|rc| rc.le(cur));
                if !ordered_after_write || !ordered_after_reads {
                    diags.push(
                        Diagnostic::new(
                            RuleId::RtRace,
                            alg_name,
                            format!(
                                "write to register {} by round {} of process {} is \
                                 not happens-before-ordered with a prior access — data race",
                                e.register, e.round, e.process
                            ),
                        )
                        .process(e.process)
                        .time(e.round),
                    );
                }
                last_write.insert(e.register, (e.process, cur.clone()));
                reads_since_write.remove(&e.register);
            }
            RtEventKind::Read => {
                let cur = &proc_clock[e.process];
                let ordered = last_write
                    .get(&e.register)
                    .is_none_or(|(wp, wc)| *wp == e.process || wc.le(cur));
                if !ordered {
                    diags.push(
                        Diagnostic::new(
                            RuleId::RtRace,
                            alg_name,
                            format!(
                                "read of register {} by round {} of process {} is \
                                 concurrent with an unordered write — data race",
                                e.register, e.round, e.process
                            ),
                        )
                        .process(e.process)
                        .time(e.round),
                    );
                }
                let cur = cur.clone();
                reads_since_write
                    .entry(e.register)
                    .and_modify(|rc| rc.join(&cur))
                    .or_insert(cur);
            }
        }
    }
}
