//! Per-algorithm contract declarations: what the linter checks against.

use crate::diag::RuleId;

/// The output→color mapping an algorithm declares (`None` = the output
/// is not a color and is exempt from the palette bound).
pub type ColorOf<O> = Box<dyn Fn(&O) -> Option<u64>>;

/// A declared exemption: a rule the registry entry knowingly violates.
///
/// Waivers don't skip the check — the rule still runs and its
/// diagnostics are *marked* waived, so the exemption stays visible in
/// every report while the CI gate counts only unwaived findings.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The waived rule.
    pub rule: RuleId,
    /// Why the violation is accepted (documented flaw, model mismatch…).
    pub reason: String,
}

/// The contract an algorithm declares to the linter.
///
/// Generic over the algorithm's output type `O` only, so one spec type
/// serves every [`Algorithm`](ftcolor_model::Algorithm) regardless of
/// its state/register types.
pub struct ContractSpec<O> {
    /// Registry name (appears in diagnostics).
    pub name: String,
    /// Palette size: emitted colors must map below this via `color_of`
    /// (`None` = no palette claim, rule `FTC-PAL-004` vacuous).
    pub palette: Option<u64>,
    /// Maps an output to its numeric color (`None` = not a color,
    /// exempt from the palette bound).
    pub color_of: ColorOf<O>,
    /// Declared solo round bound: running any single process alone must
    /// return within this many activations (`None` = no wait-freedom
    /// claim, rule `FTC-WF-006` vacuous).
    pub solo_bound: Option<u64>,
    /// Declared rule exemptions.
    pub waivers: Vec<Waiver>,
}

impl<O> ContractSpec<O> {
    /// A spec with no palette claim, no solo bound, and no waivers.
    pub fn new(name: impl Into<String>) -> Self {
        ContractSpec {
            name: name.into(),
            palette: None,
            color_of: Box::new(|_| None),
            solo_bound: None,
            waivers: Vec::new(),
        }
    }

    /// Declares the palette and the output→color mapping.
    pub fn palette(mut self, size: u64, color_of: impl Fn(&O) -> Option<u64> + 'static) -> Self {
        self.palette = Some(size);
        self.color_of = Box::new(color_of);
        self
    }

    /// Declares the solo round bound.
    pub fn solo_bound(mut self, rounds: u64) -> Self {
        self.solo_bound = Some(rounds);
        self
    }

    /// Declares a waiver for `rule`.
    pub fn waive(mut self, rule: RuleId, reason: impl Into<String>) -> Self {
        self.waivers.push(Waiver {
            rule,
            reason: reason.into(),
        });
        self
    }

    /// The waiver reason for `rule`, if one is declared.
    pub fn waiver_for(&self, rule: RuleId) -> Option<&str> {
        self.waivers
            .iter()
            .find(|w| w.rule == rule)
            .map(|w| w.reason.as_str())
    }
}
