//! Wait-free rank-based **(2n−1)-renaming** in the clique — the
//! shared-memory algorithm that Algorithm 2 "bears resemblance to"
//! (§1.3; [Attiya, Welch, *Distributed Computing*, Algorithm 55] and
//! [Attiya et al., JACM 1990, Algorithm A, step 4]).
//!
//! On the clique `K_n` our state model coincides with the standard
//! wait-free shared-memory model with immediate snapshots (§2.1), so this
//! classic algorithm runs unchanged on the [`ftcolor_model`] substrate:
//!
//! ```text
//! s ← 0
//! loop:
//!   write (X_p, s); read everyone
//!   if s collides with someone else's proposal:
//!       r ← rank of X_p among the participating identifiers (1-based)
//!       s ← r-th smallest name not proposed by anyone else
//!   else return s
//! ```
//!
//! With at most `n` participants, the `r`-th free name among at most
//! `n − 1` occupied ones is at most `(n − 1) + r − 1 ≤ 2n − 2`, giving the
//! name space `{0, …, 2n−2}` of size `2n − 1` — optimal for `n` a prime
//! power (Property 2.3 builds on exactly this bound for `n = 3`).

use ftcolor_model::{Algorithm, Neighborhood, ProcessId, Step};
use serde::{Deserialize, Serialize};

/// Register contents: identifier plus current name proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RenameReg {
    /// The process's input identifier.
    pub x: u64,
    /// The currently proposed name.
    pub proposal: u64,
}

/// The `r`-th smallest natural number (1-based `r`) not contained in
/// `taken`. `taken` need not be sorted or deduplicated.
///
/// ```
/// use ftcolor_core::renaming::kth_free_name;
/// assert_eq!(kth_free_name([0, 2], 1), 1);
/// assert_eq!(kth_free_name([0, 2], 2), 3);
/// assert_eq!(kth_free_name([], 3), 2);
/// ```
pub fn kth_free_name(taken: impl IntoIterator<Item = u64>, r: u64) -> u64 {
    assert!(r >= 1, "rank is 1-based");
    let mut t: Vec<u64> = taken.into_iter().collect();
    t.sort_unstable();
    t.dedup();
    let mut remaining = r;
    let mut candidate = 0u64;
    let mut it = t.into_iter().peekable();
    loop {
        if it.peek() == Some(&candidate) {
            it.next();
        } else {
            remaining -= 1;
            if remaining == 0 {
                return candidate;
            }
        }
        candidate += 1;
    }
}

/// The rank-based renaming algorithm. Run it on
/// [`Topology::clique`](ftcolor_model::Topology::clique).
///
/// ```
/// use ftcolor_core::renaming::RankRenaming;
/// use ftcolor_model::prelude::*;
///
/// # fn main() -> Result<(), ftcolor_model::ModelError> {
/// let n = 5;
/// let topo = Topology::clique(n)?;
/// let mut exec = Execution::new(&RankRenaming, &topo, vec![900, 17, 53, 204, 88]);
/// let report = exec.run(RoundRobin::new(), 100_000)?;
/// assert!(report.all_returned());
/// let names: Vec<u64> = report.outputs.iter().map(|o| o.unwrap()).collect();
/// let mut sorted = names.clone();
/// sorted.sort_unstable();
/// sorted.dedup();
/// assert_eq!(sorted.len(), n, "names are distinct");
/// assert!(names.iter().all(|&s| s <= 2 * n as u64 - 2), "2n−1 name space");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RankRenaming;

impl RankRenaming {
    /// Creates the algorithm object (stateless; all state is per-process).
    pub fn new() -> Self {
        RankRenaming
    }
}

impl Algorithm for RankRenaming {
    type Input = u64;
    type State = RenameReg;
    type Reg = RenameReg;
    type Output = u64;

    fn init(&self, _id: ProcessId, input: u64) -> RenameReg {
        RenameReg {
            x: input,
            proposal: 0,
        }
    }

    fn publish(&self, state: &RenameReg) -> RenameReg {
        *state
    }

    fn step(&self, state: &mut RenameReg, view: &Neighborhood<'_, RenameReg>) -> Step<u64> {
        let collision = view.awake().any(|r| r.proposal == state.proposal);
        if !collision {
            return Step::Return(state.proposal);
        }
        // 1-based rank of our identifier among the participants we see
        // (ourselves included).
        let rank = 1 + view.awake().filter(|r| r.x < state.x).count() as u64;
        state.proposal = kth_free_name(view.awake().map(|r| r.proposal), rank);
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_model::inputs;
    use ftcolor_model::prelude::*;

    fn assert_valid(n: usize, report: &ExecutionReport<u64>) {
        let names: Vec<u64> = report.outputs.iter().flatten().copied().collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate names: {names:?}");
        assert!(
            names.iter().all(|&s| s <= 2 * n as u64 - 2),
            "name out of 2n−1 space: {names:?}"
        );
    }

    #[test]
    fn kth_free_name_cases() {
        assert_eq!(kth_free_name([], 1), 0);
        assert_eq!(kth_free_name([0], 1), 1);
        assert_eq!(kth_free_name([1, 3], 1), 0);
        assert_eq!(kth_free_name([1, 3], 2), 2);
        assert_eq!(kth_free_name([1, 3], 3), 4);
        assert_eq!(kth_free_name([0, 1, 2, 3, 4], 2), 6);
        assert_eq!(kth_free_name([5, 5, 5], 6), 6);
    }

    #[test]
    fn solo_runner_gets_name_zero() {
        let topo = Topology::clique(4).unwrap();
        let mut exec = Execution::new(&RankRenaming, &topo, vec![40, 10, 30, 20]);
        let report = exec.run(SoloRunner::ascending(4), 1000).unwrap();
        // Each solo process sees only returned proposals; first one sees
        // nothing and keeps 0.
        assert_eq!(report.outputs[0], Some(0));
        assert!(report.all_returned());
        assert_valid(4, &report);
    }

    #[test]
    fn renames_under_many_schedules() {
        for n in [2usize, 3, 5, 8] {
            for seed in 0..8u64 {
                let topo = Topology::clique(n).unwrap();
                let ids = inputs::random_unique(n, 10_000, seed);

                let mut exec = Execution::new(&RankRenaming, &topo, ids.clone());
                let report = exec.run(Synchronous::new(), 100_000).unwrap();
                assert!(report.all_returned(), "sync n={n} seed={seed}");
                assert_valid(n, &report);

                let mut exec = Execution::new(&RankRenaming, &topo, ids.clone());
                let report = exec
                    .run(RandomSubset::new(seed * 5 + 1, 0.5), 1_000_000)
                    .unwrap();
                assert!(report.all_returned(), "rand n={n} seed={seed}");
                assert_valid(n, &report);
            }
        }
    }

    #[test]
    fn crashes_tolerated() {
        let n = 6;
        let topo = Topology::clique(n).unwrap();
        for seed in 0..6u64 {
            let ids = inputs::random_unique(n, 100_000, seed);
            // At least one crash at time 1: that process never wakes up.
            let crashes = (0..n).filter(|&i| i as u64 % 3 == seed % 3).map(|i| {
                (
                    ProcessId(i),
                    if i as u64 % 6 == seed % 6 {
                        1
                    } else {
                        seed % 4 + 2
                    },
                )
            });
            let sched = CrashPlan::new(RandomSubset::new(seed, 0.5), crashes);
            let mut exec = Execution::new(&RankRenaming, &topo, ids);
            let report = exec.run(sched, 1_000_000).unwrap();
            assert_valid(n, &report);
            assert!(report.returned_count() < n, "seed {seed}");
        }
    }

    #[test]
    fn synchronous_names_follow_rank() {
        // Under full synchrony everyone sees everyone from round 1: all
        // collide on proposal 0, each re-proposes its rank-th free name
        // among {0}, i.e. exactly its 1-based identifier rank, and those
        // are already distinct — names {1, …, n}.
        let n = 5;
        let topo = Topology::clique(n).unwrap();
        let ids = vec![50, 10, 40, 20, 30];
        let mut exec = Execution::new(&RankRenaming, &topo, ids.clone());
        let report = exec.run(Synchronous::new(), 10_000).unwrap();
        assert!(report.all_returned());
        for (i, &x) in ids.iter().enumerate() {
            let rank_1based = 1 + ids.iter().filter(|&&y| y < x).count() as u64;
            assert_eq!(report.outputs[i], Some(rank_1based), "process {i}");
        }
    }

    #[test]
    fn c3_coloring_equals_renaming_property_2_3() {
        // On K3 = C3 the model is 3-process shared memory; both renaming
        // and cycle-coloring must produce pairwise-distinct outputs.
        let topo = Topology::clique(3).unwrap();
        for seed in 0..10u64 {
            let ids = inputs::random_unique(3, 1000, seed);
            let mut exec = Execution::new(&RankRenaming, &topo, ids);
            let report = exec
                .run(RandomSubset::new(seed + 77, 0.6), 100_000)
                .unwrap();
            assert!(report.all_returned());
            assert_valid(3, &report);
            // Name space {0..4} = 5 names: the Property 2.3 bound.
            assert!(report.outputs.iter().flatten().all(|&s| s <= 4));
        }
    }
}
