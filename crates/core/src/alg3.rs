//! Algorithm 3 — wait-free 5-coloring in **O(log\* n)** rounds (§4).
//!
//! Algorithm 3 runs [Algorithm 2](crate::alg2) unchanged as its *coloring
//! component*, and in parallel evolves the identifier `X_p` à la
//! Cole–Vishkin so that monotone identifier chains — the quantity that
//! makes Algorithm 2 linear-time — collapse to constant length within
//! `O(log* n)` rounds (Theorem 4.4).
//!
//! Because the coloring component's correctness needs the evolving
//! identifiers to stay a *proper coloring* of the cycle at all times
//! (Lemma 4.5), identifier updates are gated by a **green-light**
//! counter `r_p`: a process may only move to its `(k+1)`-th identifier
//! once both neighbors have published counter `≥ k` — i.e.
//! `r_p ≤ min{r̂_q, r̂_q'}`. A process whose identifier becomes a local
//! extremum retires from the reduction by setting `r_p = ∞`
//! ([`Rank::Omega`]); a local minimum additionally jumps to a small
//! identifier avoiding its neighbors' future reductions (line 19).
//!
//! The green-light discipline alone is only starvation-free (a crashed
//! neighbor withholds the light forever), but the coloring component
//! never waits — the paper's core insight is that the *combination*
//! remains wait-free with `O(log* n)` round complexity.
//!
//! ## Reproduction finding
//!
//! Because Algorithm 3 embeds Algorithm 2 verbatim as its coloring
//! component, it inherits [the livelock documented there](crate::alg2#reproduction-finding-the-combination-is-not-wait-free-as-written):
//! exhaustive model checking (E6) finds non-terminating fair executions
//! on `C3` for this algorithm too. All *safety* claims (proper coloring,
//! palette `{0..4}`, the Lemma 4.5 identifier invariant) verify cleanly,
//! and the `O(log* n)` bound holds across the whole schedule zoo
//! (synchronous, round-robin, random subsets, waves, solo runners,
//! laggards) — the livelock needs the adversary to first let a process
//! return and then keep its two neighbors in perfect lockstep.
//!
//! ## Resolved ambiguity: asleep neighbors
//!
//! The paper leaves implicit what `min{r̂_q, r̂_q'}` means while a
//! neighbor's register is still `⊥`. We treat `⊥` as *withholding the
//! green light*: reducing `X_p` without knowing a sleeping neighbor's
//! identifier could collide with it upon wake-up, violating Lemma 4.5.
//! (Before its first activation a process is itself unblocked, as the
//! paper notes: `r_p(0) = 0 ≠ r̂_p(0) = ⊥`.) Wait-freedom is unaffected —
//! termination always comes from the coloring component.

use crate::alg2::color_step;
use crate::cole_vishkin::reduce;
use crate::color::mex;
use ftcolor_model::{Algorithm, Neighborhood, PorCert, ProcessId, Step};
use serde::{Deserialize, Serialize};

/// The green-light counter `r_p ∈ N ∪ {∞}`.
///
/// Ordered with `Finite(a) < Finite(b)` iff `a < b`, and
/// `Finite(_) < Omega`.
///
/// ```
/// use ftcolor_core::alg3::Rank;
/// assert!(Rank::Finite(3) < Rank::Finite(4));
/// assert!(Rank::Finite(u64::MAX) < Rank::Omega);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rank {
    /// `r_p = k`: the process has performed `k` identifier-change
    /// attempts and still participates in the reduction.
    Finite(u64),
    /// `r_p = ∞`: the identifier is frozen (the process became a local
    /// extremum of the evolving identifiers).
    Omega,
}

impl Rank {
    /// `r + 1`, saturating at `Omega` conceptually (`Finite` arithmetic
    /// never overflows in practice: `r` is bounded by the round count).
    pub fn incr(self) -> Self {
        match self {
            Rank::Finite(k) => Rank::Finite(k + 1),
            Rank::Omega => Rank::Omega,
        }
    }

    /// `true` for [`Rank::Finite`].
    pub fn is_finite(&self) -> bool {
        matches!(self, Rank::Finite(_))
    }
}

impl Default for Rank {
    fn default() -> Self {
        Rank::Finite(0)
    }
}

/// Register contents of Algorithm 3: evolving identifier, green-light
/// counter, and both color candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg3 {
    /// The evolving identifier `X_p` (initially the input).
    pub x: u64,
    /// The green-light counter `r_p`.
    pub r: Rank,
    /// First color candidate (avoids higher-identifier neighbors only).
    pub a: u64,
    /// Second color candidate (avoids all neighbor components).
    pub b: u64,
}

/// Private state (Algorithm 3 publishes everything it knows).
pub type State3 = Reg3;

/// Algorithm 3 of the paper: Algorithm 2 plus green-light–synchronized
/// Cole–Vishkin identifier reduction. See the [module docs](self).
///
/// Only defined on cycles (each process must have exactly two neighbors).
///
/// ```
/// use ftcolor_core::FastFiveColoring;
/// use ftcolor_model::prelude::*;
/// use ftcolor_model::inputs;
///
/// # fn main() -> Result<(), ftcolor_model::ModelError> {
/// let n = 1000;
/// let topo = Topology::cycle(n)?;
/// // Staircase identifiers: the worst case that makes Algorithm 2 take
/// // Θ(n) rounds is handled in O(log* n) rounds here.
/// let mut exec = Execution::new(&FastFiveColoring, &topo, inputs::staircase_poly(n));
/// let report = exec.run(Synchronous::new(), 100_000)?;
/// assert!(report.all_returned());
/// assert!(report.max_activations() < 60, "near-constant rounds");
/// let colors: Vec<u64> = report.outputs.iter().map(|c| c.unwrap()).collect();
/// assert!(topo.is_proper_coloring(&colors));
/// assert!(colors.iter().all(|&c| c <= 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FastFiveColoring;

impl FastFiveColoring {
    /// Creates the algorithm object (stateless; all state is per-process).
    pub fn new() -> Self {
        FastFiveColoring
    }
}

impl Algorithm for FastFiveColoring {
    type Input = u64;
    type State = State3;
    type Reg = Reg3;
    type Output = u64;

    fn init(&self, _id: ProcessId, input: u64) -> State3 {
        Reg3 {
            x: input,
            r: Rank::Finite(0),
            a: 0,
            b: 0,
        }
    }

    fn publish(&self, state: &State3) -> Reg3 {
        *state
    }

    /// One round of Algorithm 3 (paper lines 5–19).
    ///
    /// # Panics
    ///
    /// Panics if the process does not have exactly two neighbors — the
    /// algorithm is specified on cycles.
    fn step(&self, state: &mut State3, view: &Neighborhood<'_, Reg3>) -> Step<u64> {
        assert_eq!(view.len(), 2, "Algorithm 3 runs on cycles (degree 2)");

        // Lines 6–10: the coloring component — Algorithm 2 verbatim, on
        // the evolving identifiers.
        let awake: Vec<(u64, u64, u64)> = view.awake().map(|r| (r.x, r.a, r.b)).collect();
        if let Some(c) = color_step(state.x, &mut state.a, &mut state.b, &awake) {
            return Step::Return(c);
        }

        // Lines 11–19: the identifier-reduction component. A ⊥ neighbor
        // withholds the green light (see module docs).
        if state.r.is_finite() {
            let q = view.reg(0);
            let q2 = view.reg(1);
            if let (Some(q), Some(q2)) = (q, q2) {
                if state.r <= q.r.min(q2.r) {
                    let (xmin, xmax) = (q.x.min(q2.x), q.x.max(q2.x));
                    if xmin < state.x && state.x < xmax {
                        // Line 12–15: strictly between its neighbors —
                        // attempt a Cole–Vishkin reduction toward the
                        // smaller one.
                        state.r = state.r.incr();
                        let y = reduce(state.x, xmin);
                        if y < xmin {
                            state.x = y;
                        }
                    } else {
                        // Lines 16–19: local extremum of the evolving
                        // identifiers — retire from the reduction.
                        state.r = Rank::Omega;
                        if state.x < xmin {
                            let candidate = mex([reduce(q.x, state.x), reduce(q2.x, state.x)]);
                            state.x = state.x.min(candidate);
                        }
                    }
                }
            }
        }
        Step::Continue
    }

    // Every view read is symmetric in the two neighbors: the coloring
    // component folds over `view.awake()` as a multiset, and the
    // identifier component only uses `min`/`max` of the neighbor ranks
    // and identifiers plus a `mex` over both reductions. The state holds
    // no view-position-indexed data, so relabeling is a no-op.
    fn relabel_view(&self, _state: &mut State3, _perm: &[usize]) -> bool {
        true
    }

    // A pure rule (no interior mutability) whose solo termination from
    // every reachable state is proven by the static certifier
    // (`FTC-TERM-007`), so both POR layers are sound.
    fn por_certificate(&self) -> PorCert {
        PorCert::CommutingTerminating
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_model::inputs;
    use ftcolor_model::logstar::log_star_u64;
    use ftcolor_model::prelude::*;

    fn run_on_cycle(
        ids: Vec<u64>,
        schedule: impl Schedule,
        fuel: u64,
    ) -> (Topology, ExecutionReport<u64>) {
        let topo = Topology::cycle(ids.len()).unwrap();
        let mut exec = Execution::new(&FastFiveColoring, &topo, ids);
        let report = exec.run(schedule, fuel).unwrap();
        (topo, report)
    }

    fn assert_valid(topo: &Topology, report: &ExecutionReport<u64>) {
        assert!(
            topo.is_proper_partial_coloring(&report.outputs),
            "improper: {:?}",
            report.outputs
        );
        for c in report.outputs.iter().flatten() {
            assert!(*c <= 4, "palette violation: {c}");
        }
    }

    /// Generous-but-falsifiable regression bound for the O(log* n)
    /// theorem: measured maxima in EXPERIMENTS.md sit well below this.
    fn logstar_bound(n: usize) -> u64 {
        30 + 15 * u64::from(log_star_u64(n as u64))
    }

    #[test]
    fn rank_ordering() {
        assert!(Rank::Finite(0) < Rank::Finite(1));
        assert!(Rank::Finite(1_000_000) < Rank::Omega);
        assert_eq!(Rank::Omega.incr(), Rank::Omega);
        assert_eq!(Rank::Finite(3).incr(), Rank::Finite(4));
        assert_eq!(Rank::default(), Rank::Finite(0));
        assert!(Rank::default().is_finite());
        assert!(!Rank::Omega.is_finite());
    }

    #[test]
    fn identifiers_stay_proper_throughout_lemma_4_5() {
        // Check X̂-properness (adjacent published identifiers differ) and
        // X-vs-X̂ properness after *every* step of adversarial executions.
        for seed in 0..12u64 {
            let n = 9;
            let ids = inputs::random_unique(n, 10_000, seed);
            let topo = Topology::cycle(n).unwrap();
            let mut exec = Execution::new(&FastFiveColoring, &topo, ids);
            let mut sched = RandomSubset::new(seed * 13 + 1, 0.45);
            for t in 0..3000u64 {
                if exec.all_returned() {
                    break;
                }
                let Some(set) = sched.next(t + 1, exec.working()) else {
                    break;
                };
                exec.step_with(&set);
                for (p, q) in topo.edges() {
                    if let (Some(rp), Some(rq)) = (exec.register(p), exec.register(q)) {
                        assert_ne!(rp.x, rq.x, "published X collision on edge {p}-{q}");
                    }
                    // The stronger invariant from the Lemma 4.5 proof:
                    // X_p ∉ {X̂_q, X_q}.
                    if let Some(rq) = exec.register(q) {
                        assert_ne!(exec.state(p).x, rq.x, "X_p = X̂_q on {p}-{q}");
                    }
                    if let Some(rp) = exec.register(p) {
                        assert_ne!(exec.state(q).x, rp.x, "X_q = X̂_p on {p}-{q}");
                    }
                    assert_ne!(exec.state(p).x, exec.state(q).x, "private X collision");
                }
            }
        }
    }

    #[test]
    fn staircase_terminates_in_logstar_rounds() {
        for n in [3usize, 10, 100, 1_000, 10_000] {
            let (topo, report) =
                run_on_cycle(inputs::staircase_poly(n), Synchronous::new(), 100_000);
            assert!(report.all_returned(), "n={n}");
            assert_valid(&topo, &report);
            assert!(
                report.max_activations() <= logstar_bound(n),
                "n={n}: {} > {}",
                report.max_activations(),
                logstar_bound(n)
            );
        }
    }

    #[test]
    fn contrast_with_algorithm_2_on_staircase() {
        // The headline shape: on the adversarial staircase, Algorithm 2
        // needs Ω(n) activations while Algorithm 3 stays near-constant.
        let n = 400;
        let ids = inputs::staircase_poly(n);
        let topo = Topology::cycle(n).unwrap();

        let mut slow = Execution::new(&crate::FiveColoring, &topo, ids.clone());
        let slow_report = slow.run(Synchronous::new(), 100_000).unwrap();

        let mut fast = Execution::new(&FastFiveColoring, &topo, ids);
        let fast_report = fast.run(Synchronous::new(), 100_000).unwrap();

        assert!(
            slow_report.max_activations() >= (n as u64) / 2,
            "Algorithm 2 should be linear on the staircase, got {}",
            slow_report.max_activations()
        );
        assert!(
            fast_report.max_activations() <= logstar_bound(n),
            "Algorithm 3 should be near-constant, got {}",
            fast_report.max_activations()
        );
    }

    #[test]
    fn random_schedules_remain_correct_and_fast() {
        for seed in 0..8u64 {
            let n = 64;
            let ids = inputs::random_unique(n, 1 << 40, seed);
            let (topo, report) = run_on_cycle(ids, RandomSubset::new(seed * 3 + 2, 0.5), 1_000_000);
            assert!(report.all_returned());
            assert_valid(&topo, &report);
        }
    }

    #[test]
    fn round_robin_and_solo_schedules() {
        let n = 12;
        let ids = inputs::random_unique(n, 1 << 30, 5);
        let (topo, report) = run_on_cycle(ids.clone(), RoundRobin::new(), 100_000);
        assert!(report.all_returned());
        assert_valid(&topo, &report);

        let (topo, report) = run_on_cycle(ids, SoloRunner::ascending(n), 100_000);
        assert!(report.all_returned());
        assert_valid(&topo, &report);
    }

    #[test]
    fn laggard_neighbor_cannot_stall_termination() {
        // One process 50× slower than everyone: the green-light gate must
        // not leak into the coloring component's wait-freedom.
        for slow in 0..6usize {
            let n = 24;
            let ids = inputs::staircase_poly(n);
            let (topo, report) = run_on_cycle(ids, Laggard::new(ProcessId(slow), 50), 1_000_000);
            assert!(report.all_returned(), "slow={slow}");
            assert_valid(&topo, &report);
        }
    }

    #[test]
    fn crashes_never_break_safety() {
        // Safety (properness + palette) holds under every crash pattern.
        // Termination of survivors can fail for the same reason as in
        // Algorithm 2 (see alg2::tests::finding_crash_livelock_counterexample):
        // the coloring component inherits the paper's Lemma 3.13 gap, so
        // here we drive bounded executions and assert safety plus the
        // activation bound of whoever did return.
        let n = 40;
        let topo = Topology::cycle(n).unwrap();
        for seed in 0..8u64 {
            let ids = inputs::random_unique(n, 1 << 30, seed);
            let crashes = (0..n)
                .filter(|&i| i as u64 % 4 == seed % 4)
                .map(|i| (ProcessId(i), seed % 6 + 1));
            let mut sched = CrashPlan::new(Synchronous::new(), crashes);
            let mut exec = Execution::new(&FastFiveColoring, &topo, ids);
            for t in 0..5_000u64 {
                if exec.all_returned() {
                    break;
                }
                let Some(set) = sched.next(t + 1, exec.working()) else {
                    break;
                };
                exec.step_with(&set);
            }
            assert!(
                topo.is_proper_partial_coloring(exec.outputs()),
                "seed {seed}"
            );
            for c in exec.outputs().iter().flatten() {
                assert!(*c <= 4);
            }
            // Plenty of processes return despite the crashes, and every
            // returner respected the O(log* n) activation budget.
            let returned = exec.outputs().iter().flatten().count();
            assert!(returned >= n / 4, "seed {seed}: only {returned} returned");
            for p in topo.nodes() {
                if exec.outputs()[p.index()].is_some() {
                    let acts = exec.activation_count(p);
                    assert!(acts <= logstar_bound(n), "survivor {p} took {acts}");
                }
            }
        }
    }

    #[test]
    fn crash_free_executions_always_terminate() {
        // Complement to `crashes_never_break_safety`: without crashes the
        // wait-freedom claim holds across schedule families.
        for seed in 0..4u64 {
            let n = 32;
            let ids = inputs::random_unique(n, 1 << 35, seed);
            for mode in 0..3 {
                let topo = Topology::cycle(n).unwrap();
                let mut exec = Execution::new(&FastFiveColoring, &topo, ids.clone());
                let report = match mode {
                    0 => exec.run(Synchronous::new(), 1_000_000),
                    1 => exec.run(RoundRobin::new(), 1_000_000),
                    _ => exec.run(Wave::new(n, 5, 3), 1_000_000),
                }
                .unwrap();
                assert!(report.all_returned(), "seed {seed} mode {mode}");
            }
        }
    }

    #[test]
    fn never_awake_neighbors_block_reduction_but_not_termination() {
        // Process 1 runs alone forever between two sleeping neighbors: it
        // returns on its first activation (empty conflict set) without
        // ever reducing its identifier.
        let topo = Topology::cycle(5).unwrap();
        let ids = vec![100, 200, 300, 400, 500];
        let mut exec = Execution::new(&FastFiveColoring, &topo, ids);
        exec.step_with(&ActivationSet::solo(ProcessId(1)));
        assert_eq!(exec.outputs()[1], Some(0));
        assert_eq!(exec.state(ProcessId(1)).x, 200, "no reduction happened");
        assert_eq!(exec.state(ProcessId(1)).r, Rank::Finite(0));
    }

    #[test]
    fn blocked_process_keeps_rank_until_green_light() {
        // C3, ids 10 < 20 < 30. Wake p0 and p2 (extremes); p1 sleeps.
        // p0 is a local min among awake ids, p2 a local max, but each has
        // a ⊥ neighbor so neither may touch X.
        let topo = Topology::cycle(3).unwrap();
        let mut exec = Execution::new(&FastFiveColoring, &topo, vec![10, 20, 30]);
        exec.step_with(&ActivationSet::of([ProcessId(0), ProcessId(2)]));
        assert_eq!(exec.state(ProcessId(0)).x, 10);
        assert_eq!(exec.state(ProcessId(2)).x, 30);
        assert_eq!(exec.state(ProcessId(0)).r, Rank::Finite(0));
        assert_eq!(exec.state(ProcessId(2)).r, Rank::Finite(0));
        // Now everyone runs: p1 (strictly between) may reduce; extremes
        // set r = Ω.
        exec.step_with(&ActivationSet::All);
        if exec.outputs()[0].is_none() {
            assert_eq!(exec.state(ProcessId(0)).r, Rank::Omega);
        }
        if exec.outputs()[2].is_none() {
            assert_eq!(exec.state(ProcessId(2)).r, Rank::Omega);
        }
    }

    #[test]
    fn local_min_jump_avoids_future_reductions() {
        // Line 19: a local minimum p with X_p < min neighbors picks
        // min{X_p, mex{f(X_q, X_p), f(X_q', X_p)}}. With X_p large the
        // mex lands below 3 and must not equal either neighbor's future
        // reduction.
        let topo = Topology::cycle(3).unwrap();
        // ids: p0 = 64 (min), p1 = 200, p2 = 300.
        let mut exec = Execution::new(&FastFiveColoring, &topo, vec![64, 200, 300]);
        exec.step_with(&ActivationSet::All); // everyone sees everyone
        let x0 = exec.state(ProcessId(0)).x;
        assert!(x0 <= 2, "local min jumped to a tiny identifier, got {x0}");
        assert_eq!(exec.state(ProcessId(0)).r, Rank::Omega);
    }

    #[test]
    fn proper_coloring_inputs_remark_3_10() {
        let ids = inputs::proper_k_coloring(30, 5);
        let (topo, report) = run_on_cycle(ids, Synchronous::new(), 100_000);
        assert!(report.all_returned());
        assert_valid(&topo, &report);
    }

    #[test]
    #[should_panic(expected = "degree 2")]
    fn rejects_non_cycle_topologies() {
        let topo = Topology::clique(4).unwrap();
        let mut exec = Execution::new(&FastFiveColoring, &topo, vec![1, 2, 3, 4]);
        exec.step_with(&ActivationSet::All);
    }
}
