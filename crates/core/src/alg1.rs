//! Algorithm 1 — wait-free **6-coloring** of the cycle (§3.1).
//!
//! Every process `p` keeps a pair color `c_p = (a_p, b_p)`, initially
//! `(0, 0)`. In each round it writes `(X_p, c_p)`, reads its two
//! neighbors, and:
//!
//! * **returns** `c_p` if it collides with neither neighbor's published
//!   pair (Lemma 3.2 shows this is exactly `c_p(t) = c_p(t−1)`);
//! * otherwise recomputes
//!   `a_p ← min N ∖ { a_u : u ∼ p, X_u > X_p }` and
//!   `b_p ← min N ∖ { b_u : u ∼ p, X_u < X_p }`.
//!
//! With at most one higher and one lower neighbor on the cycle, `a_p` and
//! `b_p` stay in `{0, 1}` ∪ {…} — more precisely `a_p + b_p ≤ 2`, giving
//! the 6-color palette of Theorem 3.1. Termination is driven by local
//! extrema (which stabilize one component, Lemma 3.4) and propagates
//! inward along monotone identifier chains, hence the `⌊3n/2⌋ + 4`
//! activation bound (Theorem 3.1) and the per-process
//! `min{3ℓ, 3ℓ′, ℓ+ℓ′} + 4` bound (Lemma 3.9).

use crate::color::{mex, PairColor};
use ftcolor_model::{Algorithm, Neighborhood, PorCert, ProcessId, Step};
use serde::{Deserialize, Serialize};

/// The register contents of Algorithm 1: the (static) identifier and the
/// current pair color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg1 {
    /// The process's input identifier `X_p`.
    pub x: u64,
    /// The current tentative color `c_p = (a_p, b_p)`.
    pub color: PairColor,
}

/// The private state: identical to the register (Algorithm 1 publishes
/// everything it knows).
pub type State1 = Reg1;

/// Algorithm 1 of the paper. See the [module docs](self) for the rule.
///
/// ```
/// use ftcolor_core::SixColoring;
/// use ftcolor_model::prelude::*;
///
/// # fn main() -> Result<(), ftcolor_model::ModelError> {
/// let topo = Topology::cycle(5)?;
/// let mut exec = Execution::new(&SixColoring, &topo, vec![10, 40, 20, 50, 30]);
/// let report = exec.run(Synchronous::new(), 1000)?;
/// assert!(report.all_returned());
/// let colors: Vec<_> = report.outputs.iter().map(|c| c.unwrap()).collect();
/// assert!(topo.is_proper_coloring(&colors));
/// assert!(colors.iter().all(|c| c.weight() <= 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SixColoring;

impl SixColoring {
    /// Creates the algorithm object (stateless; all state is per-process).
    pub fn new() -> Self {
        SixColoring
    }
}

impl Algorithm for SixColoring {
    type Input = u64;
    type State = State1;
    type Reg = Reg1;
    type Output = PairColor;

    fn init(&self, _id: ProcessId, input: u64) -> State1 {
        Reg1 {
            x: input,
            color: PairColor::new(0, 0),
        }
    }

    fn publish(&self, state: &State1) -> Reg1 {
        *state
    }

    fn step(&self, state: &mut State1, view: &Neighborhood<'_, Reg1>) -> Step<PairColor> {
        // Return test: c_p ∉ { ĉ_q : q ∼ p, q awake } (a ⊥ register can
        // never equal a concrete pair).
        if view.awake().all(|r| r.color != state.color) {
            return Step::Return(state.color);
        }
        // a_p ← min N ∖ { a_u : u awake, X_u > X_p }
        state.color.a = mex(view.awake().filter(|r| r.x > state.x).map(|r| r.color.a));
        // b_p ← min N ∖ { b_u : u awake, X_u < X_p }
        state.color.b = mex(view.awake().filter(|r| r.x < state.x).map(|r| r.color.b));
        Step::Continue
    }

    // `step` folds the view as a multiset (`awake()` only) and the state
    // holds no view-position-indexed data, so view reindexing is a no-op.
    fn relabel_view(&self, _state: &mut State1, _perm: &[usize]) -> bool {
        true
    }

    // A pure rule (no interior mutability) whose solo termination from
    // every reachable state is proven by the static certifier
    // (`FTC-TERM-007`), so both POR layers are sound.
    fn por_certificate(&self) -> PorCert {
        PorCert::CommutingTerminating
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_model::inputs;
    use ftcolor_model::prelude::*;

    fn run_on_cycle(
        ids: Vec<u64>,
        schedule: impl Schedule,
        fuel: u64,
    ) -> (Topology, ExecutionReport<PairColor>) {
        let topo = Topology::cycle(ids.len()).unwrap();
        let mut exec = Execution::new(&SixColoring, &topo, ids);
        let report = exec.run(schedule, fuel).unwrap();
        (topo, report)
    }

    fn assert_valid(topo: &Topology, report: &ExecutionReport<PairColor>) {
        assert!(
            topo.is_proper_partial_coloring(&report.outputs),
            "improper: {:?}",
            report.outputs
        );
        for c in report.outputs.iter().flatten() {
            assert!(c.weight() <= 2, "palette violation: {c}");
        }
    }

    #[test]
    fn synchronous_triangle_hand_trace() {
        // C3 with ids 0 < 1 < 2, synchronous. Round 1: everyone holds
        // (0,0), everyone collides, recompute:
        //   p0 (min): a = mex{a1, a2} = mex{0,0} = 1, b = mex{} = 0 → (1,0)
        //   p1 (mid): a = mex{a2} = 1, b = mex{b0} = 1 → (1,1)
        //   p2 (max): a = mex{} = 0, b = mex{b0, b1} = 1 → (0,1)
        // Round 2: all three pairs distinct → everyone returns.
        let topo = Topology::cycle(3).unwrap();
        let mut exec = Execution::new(&SixColoring, &topo, vec![0, 1, 2]);
        exec.step_with(&ActivationSet::All);
        assert_eq!(exec.state(ProcessId(0)).color, PairColor::new(1, 0));
        assert_eq!(exec.state(ProcessId(1)).color, PairColor::new(1, 1));
        assert_eq!(exec.state(ProcessId(2)).color, PairColor::new(0, 1));
        exec.step_with(&ActivationSet::All);
        assert!(exec.all_returned());
        assert_eq!(
            exec.outputs().to_vec(),
            vec![
                Some(PairColor::new(1, 0)),
                Some(PairColor::new(1, 1)),
                Some(PairColor::new(0, 1)),
            ]
        );
    }

    #[test]
    fn solo_process_returns_immediately() {
        // A process whose neighbors are asleep sees no conflicts: its
        // (0,0) collides with nothing, so it returns on activation 1.
        let topo = Topology::cycle(4).unwrap();
        let mut exec = Execution::new(&SixColoring, &topo, vec![5, 6, 7, 8]);
        let report = exec
            .run(FixedSequence::from_indices([vec![2]]), 10)
            .unwrap();
        assert_eq!(report.outputs[2], Some(PairColor::new(0, 0)));
        assert_eq!(report.activations[2], 1);
    }

    #[test]
    fn theorem_3_1_bound_staircase_sync() {
        for n in [3usize, 4, 5, 8, 13, 32, 101] {
            let (topo, report) = run_on_cycle(
                inputs::staircase(n),
                Synchronous::new(),
                10 * n as u64 + 100,
            );
            assert!(report.all_returned(), "n={n}");
            assert_valid(&topo, &report);
            let bound = (3 * n as u64) / 2 + 4;
            assert!(
                report.max_activations() <= bound,
                "n={n}: {} > {bound}",
                report.max_activations()
            );
        }
    }

    #[test]
    fn theorem_3_1_bound_round_robin_and_random() {
        for n in [3usize, 5, 9, 24] {
            for seed in 0..5u64 {
                let ids = inputs::random_permutation(n, seed);
                let bound = (3 * n as u64) / 2 + 4;
                let fuel = 100 * n as u64 + 1000;

                let (topo, report) = run_on_cycle(ids.clone(), RoundRobin::new(), fuel);
                assert!(report.all_returned());
                assert_valid(&topo, &report);
                assert!(report.max_activations() <= bound, "rr n={n} seed={seed}");

                let (topo, report) = run_on_cycle(ids, RandomSubset::new(seed, 0.4), fuel);
                assert!(report.all_returned());
                assert_valid(&topo, &report);
                assert!(report.max_activations() <= bound, "rs n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn local_extrema_return_within_four_activations() {
        // Corollary of Lemma 3.4: a local max keeps a = 0, a local min
        // keeps b = 0, and returns after ≤ 4 activations.
        let ids = inputs::organ_pipe(12); // extrema at positions 0 and 5 (ids 0 and 9... max id 9 at pos 5, min id 0 at pos 0)
        let (_, report) = run_on_cycle(ids.clone(), Synchronous::new(), 10_000);
        let max_pos = ids.iter().enumerate().max_by_key(|(_, &x)| x).unwrap().0;
        let min_pos = ids.iter().enumerate().min_by_key(|(_, &x)| x).unwrap().0;
        assert!(report.activations[max_pos] <= 4, "max extremum too slow");
        assert!(report.activations[min_pos] <= 4, "min extremum too slow");
    }

    #[test]
    fn crashes_leave_survivors_proper() {
        let n = 12;
        let ids = inputs::random_permutation(n, 3);
        let topo = Topology::cycle(n).unwrap();
        for crash_seed in 0..8u64 {
            // Crash times start at 1, so processes crashing at time 1
            // never wake up at all — guaranteeing genuine crashes.
            let crashes = (0..n)
                .filter(|i| (*i as u64 + crash_seed).is_multiple_of(3))
                .map(|i| (ProcessId(i), (i as u64 + crash_seed) % 5 + 1));
            let sched = CrashPlan::new(Synchronous::new(), crashes);
            let mut exec = Execution::new(&SixColoring, &topo, ids.clone());
            let report = exec.run(sched, 10_000).unwrap();
            assert!(
                topo.is_proper_partial_coloring(&report.outputs),
                "seed {crash_seed}: {:?}",
                report.outputs
            );
            assert!(
                report.returned_count() < n,
                "someone must have actually crashed"
            );
        }
    }

    #[test]
    fn proper_coloring_inputs_suffice_remark_3_10() {
        // Inputs need not be unique — a proper 3-coloring works, and the
        // bound shrinks to the chain length implied by k colors.
        for n in [6usize, 9, 12, 30] {
            let ids = inputs::proper_k_coloring(n, 3);
            let (topo, report) = run_on_cycle(ids, Synchronous::new(), 1000);
            assert!(report.all_returned());
            assert_valid(&topo, &report);
            // Chains under 3 distinct values have ≤ 2 edges: termination
            // in O(1) activations regardless of n.
            assert!(
                report.max_activations() <= 3 * 2 + 4,
                "n={n}: {}",
                report.max_activations()
            );
        }
    }

    #[test]
    fn wave_schedule_still_proper_and_bounded() {
        let n = 16;
        let ids = inputs::staircase(n);
        let topo = Topology::cycle(n).unwrap();
        let mut exec = Execution::new(&SixColoring, &topo, ids);
        let report = exec.run(Wave::new(n, 3, 2), 100_000).unwrap();
        assert!(report.all_returned());
        assert!(topo.is_proper_partial_coloring(&report.outputs));
        assert!(report.max_activations() <= (3 * n as u64) / 2 + 4);
    }

    #[test]
    fn outputs_use_more_than_three_colors_sometimes() {
        // The 6-color palette is genuinely used: over staircases some
        // execution outputs a weight-2 color.
        let mut seen_weight2 = false;
        for n in 3..20 {
            let (_, report) = run_on_cycle(inputs::staircase(n), Synchronous::new(), 1000);
            if report.outputs.iter().flatten().any(|c| c.weight() == 2) {
                seen_weight2 = true;
            }
        }
        assert!(seen_weight2);
    }
}
