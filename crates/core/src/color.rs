//! Color types and the `min N ∖ S` ("mex") primitive.
//!
//! Algorithms 1 and 4 output *pair colors* `(a, b)`; Algorithms 2 and 3
//! output plain naturals in `{0, …, 4}`. All of them compute colors as
//! the minimum natural number excluded from a small conflict set — the
//! paper's recurring `min N ∖ {…}` expression, provided here as [`mex`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A pair color `(a, b)` as output by Algorithms 1 and 4.
///
/// Algorithm 1 guarantees `a + b ≤ 2` (six possible values); Algorithm 4
/// on a graph of maximum degree `Δ` guarantees `a + b ≤ Δ`, i.e. a
/// palette of `(Δ+1)(Δ+2)/2 = O(Δ²)` colors (Appendix A).
///
/// ```
/// use ftcolor_core::PairColor;
/// let c = PairColor::new(1, 1);
/// assert_eq!(c.weight(), 2);
/// assert_eq!(c.flat_index(), 4);
/// assert_eq!(c.to_string(), "(1,1)");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PairColor {
    /// First component — chosen against higher-identifier neighbors.
    pub a: u64,
    /// Second component — chosen against lower-identifier neighbors.
    pub b: u64,
}

impl PairColor {
    /// Builds the pair color `(a, b)`.
    pub fn new(a: u64, b: u64) -> Self {
        PairColor { a, b }
    }

    /// `a + b`, the quantity the palette bounds constrain.
    pub fn weight(&self) -> u64 {
        self.a + self.b
    }

    /// A dense index for the triangular palette `{(a,b) : a+b ≤ Δ}`:
    /// colors of weight `w` occupy indices `w(w+1)/2 … w(w+1)/2 + w`.
    /// For Algorithm 1 (`Δ = 2`) this maps onto `{0, …, 5}`.
    pub fn flat_index(&self) -> u64 {
        let w = self.weight();
        w * (w + 1) / 2 + self.b
    }

    /// Size of the triangular palette `{(a,b) : a+b ≤ delta}`.
    pub fn palette_size(delta: u64) -> u64 {
        (delta + 1) * (delta + 2) / 2
    }
}

impl fmt::Display for PairColor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.a, self.b)
    }
}

/// `min N ∖ S`: the least natural number not in `values` — the paper's
/// color-picking rule. `values` need not be sorted or deduplicated.
///
/// Runs in `O(k log k)` for `k` values; every call site in the coloring
/// algorithms has `k ≤ 2Δ`.
///
/// ```
/// use ftcolor_core::mex;
/// assert_eq!(mex([]), 0);
/// assert_eq!(mex([0, 1, 3]), 2);
/// assert_eq!(mex([1, 2]), 0);
/// assert_eq!(mex([2, 0, 1, 0]), 3);
/// ```
pub fn mex(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut v: Vec<u64> = values.into_iter().collect();
    v.sort_unstable();
    v.dedup();
    let mut candidate = 0u64;
    for x in v {
        if x == candidate {
            candidate += 1;
        } else if x > candidate {
            break;
        }
    }
    candidate
}

/// The two least naturals not in `values`, in increasing order — used by
/// the renaming baseline and by tests that need a "second choice".
///
/// ```
/// use ftcolor_core::mex2;
/// assert_eq!(mex2([0, 2]), (1, 3));
/// ```
pub fn mex2(values: impl IntoIterator<Item = u64>) -> (u64, u64) {
    let mut v: Vec<u64> = values.into_iter().collect();
    v.sort_unstable();
    v.dedup();
    let mut found = [None::<u64>; 2];
    let mut idx = 0;
    let mut candidate = 0u64;
    for x in v {
        while candidate < x {
            found[idx] = Some(candidate);
            idx += 1;
            if idx == 2 {
                return (found[0].unwrap(), found[1].unwrap());
            }
            candidate += 1;
        }
        candidate = x + 1;
    }
    while idx < 2 {
        found[idx] = Some(candidate);
        idx += 1;
        candidate += 1;
    }
    (found[0].unwrap(), found[1].unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mex_basics() {
        assert_eq!(mex([]), 0);
        assert_eq!(mex([1]), 0);
        assert_eq!(mex([0]), 1);
        assert_eq!(mex([0, 1, 2, 3]), 4);
        assert_eq!(mex([5, 0, 2, 1]), 3);
        assert_eq!(mex([0, 0, 1, 1]), 2);
        assert_eq!(mex([u64::MAX]), 0);
    }

    #[test]
    fn mex_is_bounded_by_set_size() {
        // mex of k values is at most k — the source of every palette bound.
        let sets: [&[u64]; 4] = [&[0], &[0, 1], &[0, 1, 2], &[9, 9, 9]];
        for s in sets {
            assert!(mex(s.iter().copied()) <= s.len() as u64);
        }
    }

    #[test]
    fn mex2_cases() {
        assert_eq!(mex2([]), (0, 1));
        assert_eq!(mex2([0]), (1, 2));
        assert_eq!(mex2([1]), (0, 2));
        assert_eq!(mex2([0, 1, 2]), (3, 4));
        assert_eq!(mex2([0, 2, 4]), (1, 3));
        assert_eq!(mex2([3]), (0, 1));
    }

    #[test]
    fn flat_index_is_a_bijection_on_small_palettes() {
        for delta in 0..6u64 {
            let mut seen = std::collections::HashSet::new();
            let size = PairColor::palette_size(delta);
            for a in 0..=delta {
                for b in 0..=(delta - a) {
                    let idx = PairColor::new(a, b).flat_index();
                    assert!(idx < size, "({a},{b}) -> {idx} ≥ {size}");
                    assert!(seen.insert(idx), "collision at ({a},{b})");
                }
            }
            assert_eq!(seen.len() as u64, size);
        }
    }

    #[test]
    fn palette_sizes() {
        assert_eq!(PairColor::palette_size(2), 6); // Algorithm 1
        assert_eq!(PairColor::palette_size(4), 15); // torus under Algorithm 4
    }

    #[test]
    fn display_and_weight() {
        let c = PairColor::new(2, 0);
        assert_eq!(c.weight(), 2);
        assert_eq!(format!("{c}"), "(2,0)");
    }
}
