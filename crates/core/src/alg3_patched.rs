//! Algorithm 3 with the patched coloring component — the repair story
//! completed for the headline algorithm.
//!
//! [`crate::alg3`] inherits [`crate::alg2`]'s livelock because it embeds
//! Algorithm 2 verbatim. This variant embeds
//! [`crate::alg2_patched`]'s counter-priority arbitration instead, and
//! keeps the identifier-reduction component (green-light `r_p`
//! synchronization, Cole–Vishkin `f`) exactly as in the paper. The
//! register carries Algorithm 3's fields plus the update counter.
//!
//! Everything established for the patched Algorithm 2 carries over:
//! safety (palette `{0,…,4}`, properness, the Lemma 4.5 identifier
//! invariant) is the paper's verbatim; no execution can revisit a
//! configuration; the documented adversaries terminate; and the
//! `O(log* n)` activation bound holds across the schedule zoo.
//!
//! One subtlety: the identifier reduction makes the evolving `X` values
//! non-unique at distance ≥ 2, but priority compares `(c, X)` only
//! against *adjacent* processes, whose identifiers stay distinct
//! (Lemma 4.5) — so arbitration ties remain impossible.

use crate::alg3::Rank;
use crate::cole_vishkin::reduce;
use crate::color::mex;
use ftcolor_model::{Algorithm, Neighborhood, PorCert, ProcessId, Step};
use serde::{Deserialize, Serialize};

/// Register contents: Algorithm 3's fields plus the update counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg3P {
    /// The evolving identifier `X_p`.
    pub x: u64,
    /// The green-light counter `r_p`.
    pub r: Rank,
    /// First color candidate.
    pub a: u64,
    /// Second color candidate.
    pub b: u64,
    /// Color-update counter (priority arbitration).
    pub c: u64,
}

/// Private state: register plus the previous view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State3P {
    /// The published part.
    pub reg: Reg3P,
    /// Neighbor registers read at the previous activation.
    pub last_view: Option<Vec<Option<Reg3P>>>,
}

/// Algorithm 3 with the patched coloring component. Cycle-only, like
/// Algorithm 3.
///
/// ```
/// use ftcolor_core::alg3_patched::FastFiveColoringPatched;
/// use ftcolor_model::prelude::*;
/// use ftcolor_model::inputs;
///
/// # fn main() -> Result<(), ftcolor_model::ModelError> {
/// let n = 500;
/// let topo = Topology::cycle(n)?;
/// let mut exec = Execution::new(&FastFiveColoringPatched, &topo, inputs::staircase_poly(n));
/// let report = exec.run(Synchronous::new(), 100_000)?;
/// assert!(report.all_returned());
/// assert!(report.max_activations() < 60);
/// let colors: Vec<u64> = report.outputs.iter().map(|c| c.unwrap()).collect();
/// assert!(topo.is_proper_coloring(&colors));
/// assert!(colors.iter().all(|&c| c <= 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FastFiveColoringPatched;

impl FastFiveColoringPatched {
    /// Creates the algorithm object (stateless; all state is per-process).
    pub fn new() -> Self {
        FastFiveColoringPatched
    }
}

impl Algorithm for FastFiveColoringPatched {
    type Input = u64;
    type State = State3P;
    type Reg = Reg3P;
    type Output = u64;

    fn init(&self, _id: ProcessId, input: u64) -> State3P {
        State3P {
            reg: Reg3P {
                x: input,
                r: Rank::Finite(0),
                a: 0,
                b: 0,
                c: 0,
            },
            last_view: None,
        }
    }

    fn publish(&self, state: &State3P) -> Reg3P {
        state.reg
    }

    /// One round: the patched coloring component followed by the paper's
    /// identifier-reduction component.
    ///
    /// # Panics
    ///
    /// Panics unless the process has exactly two neighbors (cycle-only).
    fn step(&self, state: &mut State3P, view: &Neighborhood<'_, Reg3P>) -> Step<u64> {
        assert_eq!(view.len(), 2, "Algorithm 3 runs on cycles (degree 2)");
        let current: Vec<Option<Reg3P>> = view.iter().map(Option::<&Reg3P>::copied).collect();

        // Coloring component, patched (alg2_patched semantics).
        let in_c = |v: u64| view.awake().any(|r| r.a == v || r.b == v);
        if !in_c(state.reg.a) {
            return Step::Return(state.reg.a);
        }
        if !in_c(state.reg.b) {
            return Step::Return(state.reg.b);
        }
        let me = state.reg;
        let new_a = mex(view.awake().filter(|r| r.x > me.x).flat_map(|r| [r.a, r.b]));
        let new_b = mex(view.awake().flat_map(|r| [r.a, r.b]));
        let escape = state.last_view.as_deref() == Some(&current[..]);
        let have_priority = |val: u64| {
            view.awake()
                .filter(|r| r.a == val || r.b == val)
                .all(|r| (me.c, me.x) < (r.c, r.x))
        };
        let mut changed = false;
        if new_a != me.a && (escape || have_priority(me.a)) {
            state.reg.a = new_a;
            changed = true;
        }
        if new_b != me.b && (escape || have_priority(me.b)) {
            state.reg.b = new_b;
            changed = true;
        }
        if changed {
            state.reg.c += 1;
        }

        // Identifier component — paper lines 11–19, verbatim (a ⊥
        // neighbor withholds the green light, as in `crate::alg3`).
        if state.reg.r.is_finite() {
            if let (Some(q), Some(q2)) = (view.reg(0), view.reg(1)) {
                if state.reg.r <= q.r.min(q2.r) {
                    let (xmin, xmax) = (q.x.min(q2.x), q.x.max(q2.x));
                    if xmin < state.reg.x && state.reg.x < xmax {
                        state.reg.r = state.reg.r.incr();
                        let y = reduce(state.reg.x, xmin);
                        if y < xmin {
                            state.reg.x = y;
                        }
                    } else {
                        state.reg.r = Rank::Omega;
                        if state.reg.x < xmin {
                            let candidate =
                                mex([reduce(q.x, state.reg.x), reduce(q2.x, state.reg.x)]);
                            state.reg.x = state.reg.x.min(candidate);
                        }
                    }
                }
            }
        }
        state.last_view = Some(current);
        Step::Continue
    }

    // Both view reads are symmetric in the two neighbors (multiset folds
    // and `min`/`max`/`mex` over `{reg(0), reg(1)}`), but `last_view` is
    // stored by view position and must be reindexed under relabeling,
    // exactly as in [`crate::alg2_patched`].
    fn relabel_view(&self, state: &mut State3P, perm: &[usize]) -> bool {
        if let Some(v) = &mut state.last_view {
            debug_assert_eq!(v.len(), perm.len());
            let old = v.clone();
            for (k, &src) in perm.iter().enumerate() {
                v[k] = old[src];
            }
        }
        true
    }

    // A pure rule (no interior mutability; `last_view` lives in the
    // per-process state, not the algorithm object) whose solo
    // termination from every reachable state is proven by the static
    // certifier (`FTC-TERM-007`), so both POR layers are sound.
    fn por_certificate(&self) -> PorCert {
        PorCert::CommutingTerminating
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_model::inputs;
    use ftcolor_model::logstar::log_star_u64;
    use ftcolor_model::prelude::*;

    fn assert_valid(topo: &Topology, outputs: &[Option<u64>]) {
        assert!(topo.is_proper_partial_coloring(outputs));
        assert!(outputs.iter().flatten().all(|&c| c <= 4));
    }

    fn logstar_bound(n: usize) -> u64 {
        40 + 20 * u64::from(log_star_u64(n as u64))
    }

    #[test]
    fn escapes_the_alg3_c3_livelock_adversary() {
        // The generic starvation strategy that kills unpatched Algorithm 3
        // (let one process return, lockstep the rest).
        let topo = Topology::cycle(3).unwrap();
        for ids in [vec![10u64, 20, 30], vec![0, 1, 2], vec![99, 5, 47]] {
            let min_pos = (0..3).min_by_key(|&i| ids[i]).unwrap();
            let mut exec = Execution::new(&FastFiveColoringPatched, &topo, ids.clone());
            let report = exec.run_adaptive(
                |e| {
                    if e.outputs()[min_pos].is_none() {
                        Some(ActivationSet::solo(ProcessId(min_pos)))
                    } else {
                        Some(ActivationSet::of(e.working().to_vec()))
                    }
                },
                5_000,
            );
            let report = report.unwrap_or_else(|e| panic!("ids {ids:?}: starved: {e:?}"));
            assert!(report.all_returned());
            assert_valid(&topo, &report.outputs);
        }
    }

    #[test]
    fn staircase_stays_logstar() {
        for n in [10usize, 100, 1_000, 10_000] {
            let ids = inputs::staircase_poly(n);
            let topo = Topology::cycle(n).unwrap();
            let mut exec = Execution::new(&FastFiveColoringPatched, &topo, ids);
            let report = exec.run(Synchronous::new(), 100_000).unwrap();
            assert!(report.all_returned(), "n={n}");
            assert_valid(&topo, &report.outputs);
            assert!(
                report.max_activations() <= logstar_bound(n),
                "n={n}: {}",
                report.max_activations()
            );
        }
    }

    #[test]
    fn identifiers_stay_proper_lemma_4_5() {
        for seed in 0..8u64 {
            let n = 9;
            let ids = inputs::random_unique(n, 10_000, seed);
            let topo = Topology::cycle(n).unwrap();
            let mut exec = Execution::new(&FastFiveColoringPatched, &topo, ids);
            let mut sched = RandomSubset::new(seed * 11 + 2, 0.45);
            for t in 0..3000u64 {
                if exec.all_returned() {
                    break;
                }
                let set = sched.next(t + 1, exec.working()).unwrap();
                exec.step_with(&set);
                for (p, q) in topo.edges() {
                    assert_ne!(
                        exec.state(p).reg.x,
                        exec.state(q).reg.x,
                        "seed {seed}: X collision on {p}-{q}"
                    );
                }
            }
            assert!(exec.all_returned(), "seed {seed}");
            assert_valid(&topo, exec.outputs());
        }
    }

    #[test]
    fn crash_sweeps_all_survivors_return() {
        let n = 40;
        let topo = Topology::cycle(n).unwrap();
        for seed in 0..6u64 {
            let ids = inputs::random_unique(n, 1 << 30, seed);
            let crash_ids: std::collections::HashSet<usize> =
                (0..n).filter(|&i| i as u64 % 4 == seed % 4).collect();
            let crashes = crash_ids.iter().map(|&i| (ProcessId(i), seed % 6 + 1));
            let sched = CrashPlan::new(Synchronous::new(), crashes);
            let mut exec = Execution::new(&FastFiveColoringPatched, &topo, ids);
            let report = exec.run(sched, 100_000).unwrap();
            assert_valid(&topo, &report.outputs);
            for i in 0..n {
                if !crash_ids.contains(&i) {
                    assert!(report.outputs[i].is_some(), "seed {seed}: p{i} starved");
                }
            }
        }
    }

    #[test]
    fn solo_schedule_comparable_to_unpatched() {
        // Arbitration can defer an update by an activation even in solo
        // runs (priority against a returned neighbor's frozen counter),
        // so trajectories may differ — but both terminate with valid
        // colorings in comparable round counts.
        let n = 10;
        let ids = inputs::random_unique(n, 1 << 20, 3);
        let topo = Topology::cycle(n).unwrap();

        let mut a = Execution::new(&crate::FastFiveColoring, &topo, ids.clone());
        let ra = a.run(SoloRunner::ascending(n), 100_000).unwrap();
        let mut b = Execution::new(&FastFiveColoringPatched, &topo, ids);
        let rb = b.run(SoloRunner::ascending(n), 100_000).unwrap();
        assert!(ra.all_returned() && rb.all_returned());
        assert_valid(&topo, &ra.outputs);
        assert_valid(&topo, &rb.outputs);
        assert!(rb.max_activations() <= 3 * ra.max_activations() + 6);
    }
}
