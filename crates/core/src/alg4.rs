//! Algorithm 4 — wait-free **O(Δ²)-coloring** of general graphs
//! (Appendix A).
//!
//! The direct generalization of [Algorithm 1](crate::alg1) to a graph of
//! maximum degree `Δ`: each process keeps a pair `c_p = (a_p, b_p)`,
//! returns it once it collides with no awake neighbor's pair, and
//! otherwise recomputes
//!
//! * `a_p ← min N ∖ { a_u : u ∼ p, X_u > X_p }` — at most `Δ` exclusions,
//! * `b_p ← min N ∖ { b_u : u ∼ p, X_u < X_p }` — at most `Δ` exclusions,
//!
//! so `a_p + b_p ≤ Δ` always, giving the triangular palette
//! `{(a, b) : a + b ≤ Δ}` of size `(Δ+1)(Δ+2)/2 = O(Δ²)`.
//!
//! Like Algorithm 1 the convergence is linear (termination propagates
//! from local extrema of the identifier order), and the paper notes the
//! synchronous techniques for reducing `O(Δ²)` to `Δ+1` colors do not
//! transfer to this asynchronous setting (§5).

use crate::alg1::Reg1;
use crate::color::{mex, PairColor};
use ftcolor_model::{Algorithm, Neighborhood, ProcessId, Step};

/// Algorithm 4 of the paper (Appendix A). Register layout is identical
/// to Algorithm 1's ([`Reg1`]); only the neighborhood size changes.
///
/// ```
/// use ftcolor_core::DeltaSquaredColoring;
/// use ftcolor_core::PairColor;
/// use ftcolor_model::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = Topology::petersen(); // 3-regular
/// let ids: Vec<u64> = (0..10).map(|i| (i * 37) % 101).collect();
/// let mut exec = Execution::new(&DeltaSquaredColoring, &topo, ids);
/// let report = exec.run(Synchronous::new(), 10_000)?;
/// assert!(report.all_returned());
/// let colors: Vec<PairColor> = report.outputs.iter().map(|c| c.unwrap()).collect();
/// assert!(topo.is_proper_coloring(&colors));
/// assert!(colors.iter().all(|c| c.weight() <= 3)); // a+b ≤ Δ = 3
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaSquaredColoring;

impl DeltaSquaredColoring {
    /// Creates the algorithm object (stateless; all state is per-process).
    pub fn new() -> Self {
        DeltaSquaredColoring
    }
}

impl Algorithm for DeltaSquaredColoring {
    type Input = u64;
    type State = Reg1;
    type Reg = Reg1;
    type Output = PairColor;

    fn init(&self, _id: ProcessId, input: u64) -> Reg1 {
        Reg1 {
            x: input,
            color: PairColor::new(0, 0),
        }
    }

    fn publish(&self, state: &Reg1) -> Reg1 {
        *state
    }

    fn step(&self, state: &mut Reg1, view: &Neighborhood<'_, Reg1>) -> Step<PairColor> {
        if view.awake().all(|r| r.color != state.color) {
            return Step::Return(state.color);
        }
        state.color.a = mex(view.awake().filter(|r| r.x > state.x).map(|r| r.color.a));
        state.color.b = mex(view.awake().filter(|r| r.x < state.x).map(|r| r.color.b));
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_model::inputs;
    use ftcolor_model::prelude::*;

    fn assert_valid(topo: &Topology, report: &ExecutionReport<PairColor>) {
        let delta = topo.max_degree() as u64;
        assert!(
            topo.is_proper_partial_coloring(&report.outputs),
            "improper on {}: {:?}",
            topo.name(),
            report.outputs
        );
        for c in report.outputs.iter().flatten() {
            assert!(
                c.weight() <= delta,
                "palette violation on {}: {c} with Δ={delta}",
                topo.name()
            );
        }
    }

    fn run(topo: &Topology, ids: Vec<u64>, schedule: impl Schedule) -> ExecutionReport<PairColor> {
        let mut exec = Execution::new(&DeltaSquaredColoring, topo, ids);
        exec.run(schedule, 1_000_000).unwrap()
    }

    #[test]
    fn agrees_with_algorithm_1_on_cycles() {
        // On degree-2 graphs, Algorithm 4 *is* Algorithm 1: identical
        // outputs under identical schedules.
        for seed in 0..5u64 {
            let n = 9;
            let topo = Topology::cycle(n).unwrap();
            let ids = inputs::random_permutation(n, seed);

            let mut e4 = Execution::new(&DeltaSquaredColoring, &topo, ids.clone());
            let r4 = e4.run(RandomSubset::new(seed, 0.5), 100_000).unwrap();

            let mut e1 = Execution::new(&crate::SixColoring, &topo, ids);
            let r1 = e1.run(RandomSubset::new(seed, 0.5), 100_000).unwrap();

            assert_eq!(r4.outputs, r1.outputs, "seed {seed}");
            assert_eq!(r4.activations, r1.activations, "seed {seed}");
        }
    }

    #[test]
    fn colors_toruses() {
        let topo = Topology::grid(4, 4, true).unwrap(); // Δ = 4
        let ids = inputs::random_permutation(16, 2);
        let report = run(&topo, ids, Synchronous::new());
        assert!(report.all_returned());
        assert_valid(&topo, &report);
    }

    #[test]
    fn colors_random_regular_graphs() {
        for d in [3usize, 4, 6] {
            for seed in 0..3u64 {
                let topo = Topology::random_regular(20, d, seed).unwrap();
                let ids = inputs::random_permutation(20, seed + 100);
                let report = run(&topo, ids, RandomSubset::new(seed, 0.5));
                assert!(report.all_returned(), "d={d} seed={seed}");
                assert_valid(&topo, &report);
            }
        }
    }

    #[test]
    fn colors_the_star_with_two_colors_weightwise() {
        // On the star the hub has Δ neighbors but every leaf has one.
        let topo = Topology::star(9).unwrap();
        let ids = (0..9u64).collect();
        let report = run(&topo, ids, Synchronous::new());
        assert!(report.all_returned());
        assert!(topo.is_proper_partial_coloring(&report.outputs));
        // Leaves have degree 1 → weight ≤ 1.
        for leaf in 1..9 {
            assert!(report.outputs[leaf].unwrap().weight() <= 1);
        }
    }

    #[test]
    fn colors_cliques_like_renaming() {
        // On K_n the palette bound (n)(n+1)/2 is generous but properness
        // means all-distinct — this is renaming with pair names.
        let topo = Topology::clique(6).unwrap();
        let ids = inputs::random_permutation(6, 4);
        let report = run(&topo, ids, RoundRobin::new());
        assert!(report.all_returned());
        let mut seen = std::collections::HashSet::new();
        for c in report.outputs.iter().flatten() {
            assert!(seen.insert(*c), "clique outputs must be distinct");
            assert!(c.weight() <= 5);
        }
    }

    #[test]
    fn crash_tolerant_on_gnp() {
        let topo = Topology::gnp_bounded(30, 0.15, 6, 9).unwrap();
        let ids = inputs::random_permutation(30, 9);
        let crashes = (0..30).step_by(3).map(|i| (ProcessId(i), 3u64));
        let sched = CrashPlan::new(RandomSubset::new(1, 0.5), crashes);
        let report = run(&topo, ids, sched);
        assert_valid(&topo, &report);
    }

    #[test]
    fn isolated_node_returns_immediately() {
        // gnp with p=0 yields no edges: every node returns (0,0) at once.
        let topo = Topology::gnp_bounded(5, 0.0, 2, 0).unwrap();
        let ids = (0..5u64).collect();
        let report = run(&topo, ids, Synchronous::new());
        assert!(report.all_returned());
        assert_eq!(report.max_activations(), 1);
        for c in report.outputs.iter().flatten() {
            assert_eq!(*c, PairColor::new(0, 0));
        }
    }

    #[test]
    fn linear_bound_on_paths() {
        // Path = cycle analysis without the wrap; Lemma 3.9 machinery
        // still bounds activations by ~3n/2 + 4.
        let n = 20;
        let topo = Topology::path(n).unwrap();
        let ids = inputs::staircase(n);
        let report = run(&topo, ids, Synchronous::new());
        assert!(report.all_returned());
        assert!(report.max_activations() <= (3 * n as u64) / 2 + 4);
        assert_valid(&topo, &report);
    }
}
