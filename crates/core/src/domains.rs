//! Certified abstract view domains for the registry algorithms.
//!
//! Each constructor here is a *certification* in the same spirit as
//! [`Algorithm::relabel_view`]:
//! the algorithm author asserts, with the argument documented on the
//! constructor, that the returned [`ViewDomain`] over-approximates every
//! state and view the algorithm can concretely encounter on its target
//! topology. The `ftcolor certify` pass (in `ftcolor-analyze`) then
//! drives the algorithm's real `step` over the whole domain and proves
//! the §2 contracts on the resulting local transition system; the
//! cross-check suite (`tests/certify_props.rs`) tests each certification
//! by projecting dynamically observed states into the static set.
//!
//! ## The shared abstraction arguments
//!
//! **Identifier relabeling** (`x ∈ {0, 1, 2}` with own `x = 1`): the
//! order-comparison algorithms (Algorithms 1, 2, 2-patched, 4, renaming,
//! MIS) read identifiers only through `<`/`>` against their own, so a
//! neighbor identifier is fully characterized by its side of the
//! comparison: `0` = lower, `2` = higher. Inputs properly color the
//! cycle (unique ids, or Remark 3.10's proper-coloring inputs), so the
//! equal case never occurs and is excluded — which matters for Algorithm
//! 1, whose `mex` filters would both ignore an equal-identifier neighbor
//! and admit a spurious solo stall. Algorithm 3's `reduce(x, ·)` is
//! *bitwise*, so its identifiers stay concrete over a small input range
//! instead; that is sound on its own because evolving identifiers never
//! grow (the between branch adopts `y` only when `y < xmin`, the
//! extremum branch takes a `min`).
//!
//! **Counter saturation with downward-closed view images**: the patched
//! algorithms' update counter `c` (and Algorithm 3's green-light rank
//! `r`) enter `step` only through order comparisons against view-side
//! counters, so the own-side value saturates at cap 1 while view images
//! of a saturated counter span `{0, 1, 2}` (`{F0, F1, F2}` for ranks).
//! The extra values keep *every* concrete order pattern realizable:
//! `me < r` needs a view value above the cap (a saturated tie would
//! wrongly fall through to the identifier tiebreak), and `me > r ≥ 1`
//! needs a view value below it. The induction is the standard simulation
//! argument: a concrete neighbor register projects to a reachable
//! abstract register, and that register's image set covers every
//! comparison outcome the concrete value could produce.

use crate::alg1::Reg1;
use crate::alg2::Reg2;
use crate::alg2_patched::{Reg2P, State2P};
use crate::alg3::{Rank, Reg3};
use crate::alg3_patched::{Reg3P, State3P};
use crate::color::PairColor;
use crate::mis::MisReg;
use crate::renaming::RenameReg;
use ftcolor_model::domain::{Projection, ViewDomain};
use ftcolor_model::Algorithm;

/// Abstract identifier of a lower-id neighbor.
pub const X_LO: u64 = 0;
/// Abstract identifier of the process under certification.
pub const X_ME: u64 = 1;
/// Abstract identifier of a higher-id neighbor.
pub const X_HI: u64 = 2;
/// Saturation cap for update counters and green-light ranks.
pub const COUNTER_CAP: u64 = 1;

/// View-side images of a saturated counter: exact for `0`, the full
/// three-point chain `{0, 1, 2}` once saturated (see the module docs for
/// why both the sub-cap and over-cap values are required).
fn counter_images(c: u64) -> Vec<u64> {
    if c == 0 {
        vec![0]
    } else {
        vec![0, COUNTER_CAP, COUNTER_CAP + 1]
    }
}

/// View-side images of a saturated rank: exact for `Finite(0)` and
/// `Omega`, the chain `{F0, F1, F2}` once saturated. `Omega` stays
/// itself (it only ever feeds `min`-comparisons, where it acts as a top
/// element).
fn rank_images(r: Rank) -> Vec<Rank> {
    match r {
        Rank::Finite(0) => vec![Rank::Finite(0)],
        Rank::Finite(_) => vec![
            Rank::Finite(0),
            Rank::Finite(COUNTER_CAP),
            Rank::Finite(COUNTER_CAP + 1),
        ],
        Rank::Omega => vec![Rank::Omega],
    }
}

fn saturate_counter(c: &mut u64) -> bool {
    if *c > COUNTER_CAP {
        *c = COUNTER_CAP;
        true
    } else {
        false
    }
}

fn saturate_rank(r: &mut Rank) -> bool {
    match *r {
        Rank::Finite(k) if k > COUNTER_CAP => {
            *r = Rank::Finite(COUNTER_CAP);
            true
        }
        _ => false,
    }
}

/// Shared domain for the pair-color algorithms (Algorithm 1 on the
/// cycle, Algorithm 4 at degree 2, where they coincide).
///
/// **Certified bounds**: `x` is static, and each pair component is a
/// `mex` over at most the 2 neighbors' components, so `a, b ≤ 2` — no
/// widening is needed at all. `step` reads identifiers only through
/// order comparisons (`r.x > x`, `r.x < x`), so the `{0, 1, 2}`
/// relabeling with own `x = 1` is exhaustive; `step` folds the view as a
/// multiset (`relabel_view` is a certified no-op), so views enumerate
/// unordered.
pub fn pair_domain<A>() -> ViewDomain<A>
where
    A: Algorithm<State = Reg1, Reg = Reg1>,
{
    ViewDomain::new(2)
        .init_state(Reg1 {
            x: X_ME,
            color: PairColor::new(0, 0),
        })
        .symmetric_views()
        .note(
            "identifiers relabeled to {lower, me, higher}; pair components \
             naturally bounded by mex over ≤2 neighbors (no widening)",
        )
        .neighbor_images(|r: &Reg1| [X_LO, X_HI].iter().map(|&x| Reg1 { x, ..*r }).collect())
        .widen(|s: &mut Reg1| {
            if s.x != X_ME {
                Projection::Breach(format!("own identifier changed: {s:?}"))
            } else if s.color.a > 2 || s.color.b > 2 {
                Projection::Breach(format!("pair component exceeds degree bound: {s:?}"))
            } else {
                Projection::Inside
            }
        })
        .project(|s: &Reg1| Reg1 { x: X_ME, ..*s })
}

/// Domain for Algorithm 2 (5-coloring). `colors` is the candidate
/// lattice bound — 5 in the registry, matching Theorem 3.11's palette
/// (each candidate is a `mex` over at most 4 published components).
///
/// Identifiers are order-compared only, so they relabel to `{0, 1, 2}`;
/// the state has no unbounded field, so widening is pure bounds-checking.
pub fn five_coloring_domain(colors: u64) -> ViewDomain<crate::FiveColoring> {
    ViewDomain::new(2)
        .init_state(Reg2 {
            x: X_ME,
            a: 0,
            b: 0,
        })
        .symmetric_views()
        .note(
            "identifiers relabeled to {lower, me, higher}; candidates bounded \
             by mex over ≤4 components (no widening)",
        )
        .neighbor_images(|r: &Reg2| [X_LO, X_HI].iter().map(|&x| Reg2 { x, ..*r }).collect())
        .widen(move |s: &mut Reg2| {
            if s.x != X_ME {
                Projection::Breach(format!("own identifier changed: {s:?}"))
            } else if s.a >= colors || s.b >= colors {
                Projection::Breach(format!(
                    "candidate exceeds the {colors}-color lattice: {s:?}"
                ))
            } else {
                Projection::Inside
            }
        })
        .project(|s: &Reg2| Reg2 { x: X_ME, ..*s })
}

/// Domain for the patched Algorithm 2 (counter-priority arbitration).
///
/// Two abstractions beyond [`five_coloring_domain`]:
///
/// * the unbounded update counter `c` saturates at [`COUNTER_CAP`] on
///   the own side, with view images spanning `{0, 1, 2}` so every
///   `(c, x)`-lexicographic priority outcome stays realizable (module
///   docs);
/// * `last_view` is dropped from state identity (`canon`) because `step`
///   reads it only through `last_view == current`; the per-view
///   `variants` hook re-expands the two equivalence classes — equal to
///   the view being stepped (frozen-view escape fires) and anything else
///   (it doesn't; `None` and any stale view behave identically).
pub fn five_coloring_patched_domain(colors: u64) -> ViewDomain<crate::FiveColoringPatched> {
    ViewDomain::new(2)
        .init_state(State2P {
            reg: Reg2P {
                x: X_ME,
                a: 0,
                b: 0,
                c: 0,
            },
            last_view: None,
        })
        .symmetric_views()
        .note(
            "update counter saturated at 1 (order-compared only; view images \
             span {0,1,2}); last_view quotiented to {equals-current, other} \
             and re-expanded per view",
        )
        .neighbor_images(|r: &Reg2P| {
            let mut out = Vec::new();
            for &x in &[X_LO, X_HI] {
                for c in counter_images(r.c) {
                    out.push(Reg2P { x, c, ..*r });
                }
            }
            out
        })
        .widen(move |s: &mut State2P| {
            if s.reg.x != X_ME {
                return Projection::Breach(format!("own identifier changed: {:?}", s.reg));
            }
            if s.reg.a >= colors || s.reg.b >= colors {
                return Projection::Breach(format!(
                    "candidate exceeds the {colors}-color lattice: {:?}",
                    s.reg
                ));
            }
            if saturate_counter(&mut s.reg.c) {
                Projection::Widened
            } else {
                Projection::Inside
            }
        })
        .canon(|s: &mut State2P| s.last_view = None)
        .variants(|s: &State2P, view| {
            vec![
                State2P {
                    reg: s.reg,
                    last_view: None,
                },
                State2P {
                    reg: s.reg,
                    last_view: Some(view.to_vec()),
                },
            ]
        })
        .project(|s: &State2P| State2P {
            reg: Reg2P {
                x: X_ME,
                c: s.reg.c.min(COUNTER_CAP),
                ..s.reg
            },
            last_view: None,
        })
}

/// Domain for Algorithm 3 (`O(log* n)` 5-coloring). Identifiers stay
/// *concrete* over `0..=max_id` — `reduce(x, ·)` is bitwise, so the
/// order-only relabeling is unsound here — which is itself sound because
/// evolving identifiers never grow (the between branch adopts `y` only
/// when `y < xmin`; the extremum branch takes a `min`). By Remark 3.10
/// the inputs may be any proper coloring of the cycle, so `max_id = 2`
/// (ids from a proper 3-coloring) exercises every branch including the
/// Cole–Vishkin reduction. The green-light rank `r` — the paper's
/// log*-round counter — is the unbounded field: it saturates at
/// [`COUNTER_CAP`] with `{F0, F1, F2}` view images (it enters `step`
/// only via `r ≤ min(r̂_q, r̂_q')`).
pub fn fast_five_domain(colors: u64, max_id: u64) -> ViewDomain<crate::FastFiveColoring> {
    let mut d = ViewDomain::new(2)
        .symmetric_views()
        .note(
            "concrete ids 0..=max_id (bitwise reduce; ids never grow); \
             green-light rank saturated at F1 with {F0,F1,F2} view images",
        )
        .neighbor_images(|r: &Reg3| {
            rank_images(r.r)
                .into_iter()
                .map(|rk| Reg3 { r: rk, ..*r })
                .collect()
        })
        .widen(move |s: &mut Reg3| {
            if s.x > max_id {
                return Projection::Breach(format!("identifier escaped 0..={max_id}: {s:?}"));
            }
            if s.a >= colors || s.b >= colors {
                return Projection::Breach(format!(
                    "candidate exceeds the {colors}-color lattice: {s:?}"
                ));
            }
            if saturate_rank(&mut s.r) {
                Projection::Widened
            } else {
                Projection::Inside
            }
        })
        .project(|s: &Reg3| {
            let mut t = *s;
            saturate_rank(&mut t.r);
            t
        });
    for x in 0..=max_id {
        d = d.init_state(Reg3 {
            x,
            r: Rank::Finite(0),
            a: 0,
            b: 0,
        });
    }
    d
}

/// Domain for the patched Algorithm 3 — the union of the
/// [`fast_five_domain`] abstractions (concrete small identifiers,
/// saturated rank) and the [`five_coloring_patched_domain`] ones
/// (saturated update counter, quotiented `last_view`).
pub fn fast_five_patched_domain(
    colors: u64,
    max_id: u64,
) -> ViewDomain<crate::FastFiveColoringPatched> {
    let mut d = ViewDomain::new(2)
        .symmetric_views()
        .note(
            "concrete ids 0..=max_id; green-light rank and update counter \
             saturated at 1 with enriched view images; last_view quotiented \
             and re-expanded per view",
        )
        .neighbor_images(|r: &Reg3P| {
            let mut out = Vec::new();
            for rk in rank_images(r.r) {
                for c in counter_images(r.c) {
                    out.push(Reg3P { r: rk, c, ..*r });
                }
            }
            out
        })
        .widen(move |s: &mut State3P| {
            if s.reg.x > max_id {
                return Projection::Breach(format!("identifier escaped 0..={max_id}: {:?}", s.reg));
            }
            if s.reg.a >= colors || s.reg.b >= colors {
                return Projection::Breach(format!(
                    "candidate exceeds the {colors}-color lattice: {:?}",
                    s.reg
                ));
            }
            let widened = saturate_rank(&mut s.reg.r) | saturate_counter(&mut s.reg.c);
            if widened {
                Projection::Widened
            } else {
                Projection::Inside
            }
        })
        .canon(|s: &mut State3P| s.last_view = None)
        .variants(|s: &State3P, view| {
            vec![
                State3P {
                    reg: s.reg,
                    last_view: None,
                },
                State3P {
                    reg: s.reg,
                    last_view: Some(view.to_vec()),
                },
            ]
        })
        .project(|s: &State3P| {
            let mut reg = s.reg;
            saturate_rank(&mut reg.r);
            saturate_counter(&mut reg.c);
            State3P {
                reg,
                last_view: None,
            }
        });
    for x in 0..=max_id {
        d = d.init_state(State3P {
            reg: Reg3P {
                x,
                r: Rank::Finite(0),
                a: 0,
                b: 0,
                c: 0,
            },
            last_view: None,
        });
    }
    d
}

/// Domain for rank-based renaming on the clique `K_n` (registry: `K_3`,
/// the Property 2.3 instance). Degree `n − 1`; identifiers relabel to
/// `{0, 2}` on the view side (order-compared only; repetition covers
/// "both neighbors higher"); proposals are bounded by the `2n − 1` name
/// space, so widening is pure bounds-checking.
pub fn renaming_domain(n: u64) -> ViewDomain<crate::renaming::RankRenaming> {
    let names = 2 * n - 1;
    ViewDomain::new(n as usize - 1)
        .init_state(RenameReg {
            x: X_ME,
            proposal: 0,
        })
        .symmetric_views()
        .note(
            "identifiers relabeled to {lower, me, higher}; proposals bounded \
             by the 2n-1 name space (no widening)",
        )
        .neighbor_images(|r: &RenameReg| {
            [X_LO, X_HI]
                .iter()
                .map(|&x| RenameReg { x, ..*r })
                .collect()
        })
        .widen(move |s: &mut RenameReg| {
            if s.x != X_ME {
                Projection::Breach(format!("own identifier changed: {s:?}"))
            } else if s.proposal >= names {
                Projection::Breach(format!("proposal escaped the {names}-name space: {s:?}"))
            } else {
                Projection::Inside
            }
        })
        .project(|s: &RenameReg| RenameReg { x: X_ME, ..*s })
}

/// Shared domain for the MIS candidates (all three use the same
/// register: identifier plus tentative verdict). Identifiers relabel to
/// `{0, 1, 2}`; the tentative verdict is a three-point lattice, so
/// nothing widens.
pub fn mis_domain<A>() -> ViewDomain<A>
where
    A: Algorithm<State = MisReg, Reg = MisReg>,
{
    ViewDomain::new(2)
        .init_state(MisReg {
            x: X_ME,
            tentative: None,
        })
        .symmetric_views()
        .note("identifiers relabeled to {lower, me, higher}; verdicts form a 3-point lattice")
        .neighbor_images(|r: &MisReg| [X_LO, X_HI].iter().map(|&x| MisReg { x, ..*r }).collect())
        .widen(|s: &mut MisReg| {
            if s.x != X_ME {
                Projection::Breach(format!("own identifier changed: {s:?}"))
            } else {
                Projection::Inside
            }
        })
        .project(|s: &MisReg| MisReg { x: X_ME, ..*s })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FiveColoringPatched, SixColoring};

    #[test]
    fn pair_domain_relabels_and_bounds() {
        let d: ViewDomain<SixColoring> = pair_domain();
        let r = Reg1 {
            x: 7,
            color: PairColor::new(1, 0),
        };
        let imgs = d.images(&r);
        assert_eq!(imgs.len(), 2);
        assert!(imgs.iter().all(|i| i.x == X_LO || i.x == X_HI));
        assert!(imgs.iter().all(|i| i.color == r.color));

        let mut bad = Reg1 {
            x: X_ME,
            color: PairColor::new(3, 0),
        };
        assert!(matches!(d.widen_state(&mut bad), Projection::Breach(_)));
        assert_eq!(d.project_state(&r).x, X_ME);
    }

    #[test]
    fn counter_images_cover_all_order_patterns() {
        // Own counters live in {0, 1}; every concrete comparison outcome
        // against an arbitrary neighbor counter must be realizable.
        assert_eq!(counter_images(0), vec![0]);
        let sat = counter_images(1);
        assert!(sat.contains(&0), "me > r ≥ 1 needs a view value below cap");
        assert!(sat.contains(&1), "me == r needs a tie at the cap");
        assert!(sat.contains(&2), "me < r needs a view value above cap");
    }

    #[test]
    fn patched_domain_saturates_and_quotients() {
        let d = five_coloring_patched_domain(5);
        let mut s = State2P {
            reg: Reg2P {
                x: X_ME,
                a: 2,
                b: 3,
                c: 9,
            },
            last_view: Some(vec![None, None]),
        };
        assert_eq!(d.widen_state(&mut s), Projection::Widened);
        assert_eq!(s.reg.c, COUNTER_CAP);
        d.canonize(&mut s);
        assert_eq!(s.last_view, None);

        let view = vec![
            None,
            Some(Reg2P {
                x: X_LO,
                a: 0,
                b: 0,
                c: 0,
            }),
        ];
        let vars = d.variants_for(&s, &view);
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0].last_view, None);
        assert_eq!(vars[1].last_view, Some(view));
    }

    #[test]
    fn fast_five_domain_keeps_ids_concrete() {
        let d = fast_five_domain(5, 2);
        assert_eq!(d.init_states().len(), 3);
        let r = Reg3 {
            x: 2,
            r: Rank::Finite(1),
            a: 0,
            b: 0,
        };
        let imgs = d.images(&r);
        assert!(imgs.iter().all(|i| i.x == 2), "ids are not relabeled");
        assert_eq!(imgs.len(), 3, "saturated rank spans F0..F2");
        let omega = Reg3 {
            r: Rank::Omega,
            ..r
        };
        assert_eq!(d.images(&omega), vec![omega]);

        let mut esc = Reg3 { x: 9, ..r };
        assert!(matches!(d.widen_state(&mut esc), Projection::Breach(_)));
    }

    #[test]
    fn projections_are_idempotent() {
        let d = five_coloring_patched_domain(5);
        let s = State2P {
            reg: Reg2P {
                x: 44,
                a: 1,
                b: 2,
                c: 17,
            },
            last_view: Some(vec![None, None]),
        };
        let p = d.project_state(&s);
        assert_eq!(d.project_state(&p), p);
        assert_eq!(p.reg.x, X_ME);
        assert_eq!(p.reg.c, COUNTER_CAP);
        assert_eq!(p.last_view, None);

        let _: ViewDomain<FiveColoringPatched> = five_coloring_patched_domain(5);
    }
}
