//! The identifier-reduction function `f` of §4.1 (Eq. (6)), adapted from
//! Cole and Vishkin's deterministic coin tossing.
//!
//! For naturals `X = Σ X_k 2^k` and `Y`, with `|Z| = ⌈log₂(Z+1)⌉`:
//!
//! ```text
//! f(X, Y) = 2i + X_i   where   i = min( {|X|, |Y|} ∪ { k : X_k ≠ Y_k } )
//! ```
//!
//! The two load-bearing properties, each verified exhaustively and by
//! property tests:
//!
//! * **Lemma 4.2** — if `x > y ≥ 10` then `f(x, y) < y`: one reduction
//!   strictly descends below the smaller argument once identifiers are
//!   double digits, which drives the `O(log* n)` convergence;
//! * **Lemma 4.3** — if `x > y > z` then `f(x, y) ≠ f(y, z)`: reductions
//!   applied along a monotone chain never create an adjacent collision,
//!   which preserves the proper coloring of the evolving identifiers
//!   (Lemma 4.5).

use ftcolor_model::logstar::bit_length;

/// `f(x, y) = 2i + x_i` with `i` the smallest index where `x` and `y`
/// differ, capped by `min(|x|, |y|)` (Eq. (6)).
///
/// Intuition: `x` encodes, in `O(log x)` bits, "the first bit where I
/// differ from my smaller neighbor, and my value of that bit" — enough
/// to remain distinct from that neighbor's own reduction (Lemma 4.3).
///
/// The result is at most `2·min(|x|, |y|) + 1 = O(log min(x, y))`.
///
/// ```
/// use ftcolor_core::cole_vishkin::reduce;
/// // x = 6 = 0b110, y = 2 = 0b010: bits differ first at k = 2 and
/// // min(|x|,|y|) = 2, so i = 2 and f = 2·2 + 1 = 5.
/// assert_eq!(reduce(6, 2), 5);
/// // Identical values only stop at i = |x| = |y|.
/// assert_eq!(reduce(5, 5), 2 * 3 + 0);
/// ```
pub fn reduce(x: u64, y: u64) -> u64 {
    let cap = u64::from(bit_length(x).min(bit_length(y)));
    let diff = x ^ y;
    let first_diff = if diff == 0 {
        u64::MAX
    } else {
        u64::from(diff.trailing_zeros())
    };
    let i = cap.min(first_diff);
    let x_i = if i < 64 { (x >> i) & 1 } else { 0 };
    2 * i + x_i
}

/// Upper bound `2·min(|x|, |y|) + 1` on [`reduce`] — the contraction that
/// Lemma 4.1 iterates.
pub fn reduce_bound(x: u64, y: u64) -> u64 {
    2 * u64::from(bit_length(x).min(bit_length(y))) + 1
}

/// Applies [`reduce`] down a strictly decreasing chain
/// `c_0 > c_1 > … > c_k`, returning the reduced values
/// `f(c_0, c_1), f(c_1, c_2), …` — the synchronous shape of what
/// Algorithm 3 does asynchronously. Useful in tests and the E4 bench.
///
/// # Panics
///
/// Panics if the chain is not strictly decreasing.
pub fn reduce_chain(chain: &[u64]) -> Vec<u64> {
    for w in chain.windows(2) {
        assert!(w[0] > w[1], "chain must strictly decrease");
    }
    chain.windows(2).map(|w| reduce(w[0], w[1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Bit `k` of `z`.
    fn bit(z: u64, k: u64) -> u64 {
        if k >= 64 {
            0
        } else {
            (z >> k) & 1
        }
    }

    /// Direct transcription of Eq. (6), as an oracle for `reduce`.
    fn reduce_oracle(x: u64, y: u64) -> u64 {
        let mut i = u64::from(bit_length(x).min(bit_length(y)));
        for k in 0..64 {
            if bit(x, k) != bit(y, k) {
                i = i.min(k);
                break;
            }
        }
        2 * i + bit(x, i)
    }

    #[test]
    fn matches_oracle_exhaustively_small() {
        for x in 0..256u64 {
            for y in 0..256u64 {
                assert_eq!(reduce(x, y), reduce_oracle(x, y), "x={x} y={y}");
            }
        }
    }

    #[test]
    fn handcomputed_values() {
        // x=0b110=6, y=0b010=2: differ at bit 2; |y|=2 caps i at 2 too.
        assert_eq!(reduce(6, 2), 5);
        // x=0b101=5, y=0b011=3: differ at bit 1, x_1=0 → f=2.
        assert_eq!(reduce(5, 3), 2);
        // x=0b1000=8, y=0b0111=7: differ at bit 0, x_0=0 → f=0.
        assert_eq!(reduce(8, 7), 0);
        // x=13=0b1101, y=5=0b0101: differ at bit 3; |y|=3 caps i=3, x_3=1 → 7.
        assert_eq!(reduce(13, 5), 7);
        // Equal arguments: i=|x|, bit above the top is 0.
        assert_eq!(reduce(0, 0), 0);
        assert_eq!(reduce(7, 7), 6);
    }

    #[test]
    fn lemma_4_2_exhaustive() {
        // x > y ≥ 10 ⟹ f(x,y) < y, exhaustively for y up to 2^12.
        for y in 10u64..4096 {
            for x in y + 1..y + 200 {
                let f = reduce(x, y);
                assert!(f < y, "f({x},{y}) = {f} ≥ {y}");
            }
            // And for some much larger x.
            for x in [y * 17 + 3, 1 << 40, u64::MAX] {
                assert!(reduce(x, y) < y);
            }
        }
    }

    #[test]
    fn lemma_4_2_boundary_is_tight() {
        // The constant 10 is tight-ish: below 10 the lemma can fail.
        // y = 9 = 0b1001, x = 13 = 0b1101: differ at bit 2, x_2 = 1 → f = 5 < 9,
        // but y = 2, x = 6 gives f = 5 ≥ 2: find a genuine failure below 10.
        let mut failure_below_10 = false;
        for y in 1u64..10 {
            for x in y + 1..100 {
                if reduce(x, y) >= y {
                    failure_below_10 = true;
                }
            }
        }
        assert!(failure_below_10, "Lemma 4.2's threshold matters");
    }

    #[test]
    fn lemma_4_3_exhaustive_small() {
        // x > y > z ⟹ f(x,y) ≠ f(y,z), exhaustively to 128.
        for x in 0..128u64 {
            for y in 0..x {
                for z in 0..y {
                    assert_ne!(reduce(x, y), reduce(y, z), "x={x} y={y} z={z}");
                }
            }
        }
    }

    #[test]
    fn reduce_respects_bound() {
        for x in 0..512u64 {
            for y in 0..512u64 {
                assert!(reduce(x, y) <= reduce_bound(x, y));
            }
        }
    }

    #[test]
    fn reduce_chain_stays_proper() {
        let chain: Vec<u64> = (0..20u64).map(|i| 1_000_000 - i * 31).collect();
        let reduced = reduce_chain(&chain);
        for w in reduced.windows(2) {
            assert_ne!(w[0], w[1], "adjacent reductions collide");
        }
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn reduce_chain_rejects_nonmonotone() {
        reduce_chain(&[3, 5, 1]);
    }

    proptest! {
        #[test]
        fn prop_lemma_4_2(y in 10u64..u64::MAX / 2, dx in 1u64..u64::MAX / 2) {
            let x = y.saturating_add(dx);
            prop_assert!(reduce(x, y) < y);
        }

        #[test]
        fn prop_lemma_4_3(a in 0u64..u64::MAX, b in 0u64..u64::MAX, c in 0u64..u64::MAX) {
            let mut v = [a, b, c];
            v.sort_unstable();
            let (z, y, x) = (v[0], v[1], v[2]);
            prop_assume!(x > y && y > z);
            prop_assert_ne!(reduce(x, y), reduce(y, z));
        }

        #[test]
        fn prop_bound(x in 0u64..u64::MAX, y in 0u64..u64::MAX) {
            prop_assert!(reduce(x, y) <= reduce_bound(x, y));
        }

        #[test]
        fn prop_matches_oracle(x in 0u64..u64::MAX, y in 0u64..u64::MAX) {
            prop_assert_eq!(reduce(x, y), reduce_oracle(x, y));
        }
    }
}
