//! Algorithm 2 — wait-free **5-coloring** of the cycle (§3.2).
//!
//! Each process keeps *two* candidate colors `a_p, b_p ∈ N` (both
//! initially 0). In each round it writes `(X_p, a_p, b_p)`, reads its
//! neighbors, forms
//!
//! * `C` — all four color components published by awake neighbors, and
//! * `C⁺ ⊆ C` — the components of awake neighbors with larger identifier,
//!
//! then **returns** `a_p` if `a_p ∉ C`, else returns `b_p` if `b_p ∉ C`,
//! else recomputes `a_p ← min N ∖ C⁺` and `b_p ← min N ∖ C`.
//!
//! Since `|C| ≤ 4`, both candidates stay in `{0, …, 4}` — the palette of
//! Theorem 3.11, optimal for the class of all cycles by Property 2.3
//! (coloring `C_3` is 3-process renaming, which needs `2·3 − 1 = 5`
//! names). The `a`-candidate only avoids *higher* neighbors, which makes
//! local maxima stabilize `a = 0` and drives the `O(n)` convergence along
//! monotone chains (Lemmas 3.13, 3.14); the `b`-candidate avoids
//! everything, providing the second chance that makes the palette tight.
//!
//! The paper's decomposition (§1.3): the `a`-component alone is
//! starvation-free, the `b`-component alone is obstruction-free — and
//! the paper claims their combination is wait-free.
//!
//! ## Reproduction finding: the combination is *not* wait-free as written
//!
//! This implementation transcribes Algorithm 2 verbatim, and exhaustive
//! model checking (experiment E6) finds executions in which processes
//! are activated forever without returning:
//!
//! * **crash-free minimal witness** (`C3`, ids `0,1,2`): `p0` runs solo
//!   and returns color 0; its register freezes at `(0, a=0, b=0)`;
//!   `p1, p2` then run in lockstep and their `b`-candidates chase each
//!   other with period 2 forever
//!   (`tests::finding_crash_free_livelock_on_c3`);
//! * **crash witness** (`C6`): two processes crash right after their
//!   first activation, freezing `(a,b) = (0,0)` registers next to
//!   surviving local maxima
//!   (`tests::finding_crash_livelock_counterexample`).
//!
//! The proof gap is in Lemma 3.13's step `|A_p| = |A_q| − 1 = |A_q′| + 1`,
//! which presumes every neighbor's *published* `A`-set tracks the chain
//! structure — frozen registers (of returned or crashed processes stuck
//! at their initial `(0,0)`) violate it. **Safety is unaffected**: every
//! output ever produced is proper and within the palette (verified
//! exhaustively on `C3`/`C4` and by heavy randomized testing), and under
//! schedules that ever desynchronize the oscillating pair the algorithm
//! terminates within the paper's `O(n)` bound. Algorithm 1 does not have
//! this issue — its return test compares whole pairs, and the model
//! checker verifies it livelock-free. See DESIGN.md, "Reproduction
//! findings".

use crate::color::mex;
use ftcolor_model::{Algorithm, Neighborhood, PorCert, ProcessId, Step};
use serde::{Deserialize, Serialize};

/// Register contents of Algorithm 2: identifier plus both candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg2 {
    /// The process's input identifier `X_p`.
    pub x: u64,
    /// First candidate color (avoids higher-id neighbors only).
    pub a: u64,
    /// Second candidate color (avoids all neighbor components).
    pub b: u64,
}

/// Private state (Algorithm 2 publishes everything it knows).
pub type State2 = Reg2;

/// Algorithm 2 of the paper. See the [module docs](self) for the rule.
///
/// ```
/// use ftcolor_core::FiveColoring;
/// use ftcolor_model::prelude::*;
///
/// # fn main() -> Result<(), ftcolor_model::ModelError> {
/// let topo = Topology::cycle(6)?;
/// let mut exec = Execution::new(&FiveColoring, &topo, vec![3, 14, 15, 92, 65, 35]);
/// let report = exec.run(RoundRobin::new(), 10_000)?;
/// assert!(report.all_returned());
/// let colors: Vec<u64> = report.outputs.iter().map(|c| c.unwrap()).collect();
/// assert!(topo.is_proper_coloring(&colors));
/// assert!(colors.iter().all(|&c| c <= 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FiveColoring;

impl FiveColoring {
    /// Creates the algorithm object (stateless; all state is per-process).
    pub fn new() -> Self {
        FiveColoring
    }
}

/// Shared step logic for Algorithm 2 — also reused verbatim as the
/// coloring component of Algorithm 3 (which runs "Algorithm 2 unchanged"
/// per §4, plus the identifier reduction).
pub(crate) fn color_step(
    x: u64,
    a: &mut u64,
    b: &mut u64,
    awake: &[(u64, u64, u64)], // (x_u, a_u, b_u) of awake neighbors
) -> Option<u64> {
    let in_c = |v: u64| awake.iter().any(|&(_, au, bu)| au == v || bu == v);
    if !in_c(*a) {
        return Some(*a);
    }
    if !in_c(*b) {
        return Some(*b);
    }
    *a = mex(awake
        .iter()
        .filter(|&&(xu, _, _)| xu > x)
        .flat_map(|&(_, au, bu)| [au, bu]));
    *b = mex(awake.iter().flat_map(|&(_, au, bu)| [au, bu]));
    None
}

impl Algorithm for FiveColoring {
    type Input = u64;
    type State = State2;
    type Reg = Reg2;
    type Output = u64;

    fn init(&self, _id: ProcessId, input: u64) -> State2 {
        Reg2 {
            x: input,
            a: 0,
            b: 0,
        }
    }

    fn publish(&self, state: &State2) -> Reg2 {
        *state
    }

    fn step(&self, state: &mut State2, view: &Neighborhood<'_, Reg2>) -> Step<u64> {
        let awake: Vec<(u64, u64, u64)> = view.awake().map(|r| (r.x, r.a, r.b)).collect();
        match color_step(state.x, &mut state.a, &mut state.b, &awake) {
            Some(c) => Step::Return(c),
            None => Step::Continue,
        }
    }

    // `color_step` folds the awake neighbors as a multiset and the state
    // holds no view-position-indexed data, so view reindexing is a no-op.
    fn relabel_view(&self, _state: &mut State2, _perm: &[usize]) -> bool {
        true
    }

    // A pure rule (no interior mutability) whose solo termination from
    // every reachable state is proven by the static certifier
    // (`FTC-TERM-007`), so both POR layers are sound.
    fn por_certificate(&self) -> PorCert {
        PorCert::CommutingTerminating
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_model::inputs;
    use ftcolor_model::prelude::*;

    fn run_on_cycle(
        ids: Vec<u64>,
        schedule: impl Schedule,
        fuel: u64,
    ) -> (Topology, ExecutionReport<u64>) {
        let topo = Topology::cycle(ids.len()).unwrap();
        let mut exec = Execution::new(&FiveColoring, &topo, ids);
        let report = exec.run(schedule, fuel).unwrap();
        (topo, report)
    }

    fn assert_valid(topo: &Topology, report: &ExecutionReport<u64>) {
        assert!(
            topo.is_proper_partial_coloring(&report.outputs),
            "improper: {:?}",
            report.outputs
        );
        for c in report.outputs.iter().flatten() {
            assert!(*c <= 4, "palette violation: {c}");
        }
    }

    #[test]
    fn synchronous_triangle_hand_trace() {
        // C3, ids 0 < 1 < 2, synchronous. Round 1: everyone publishes
        // (x, 0, 0); a_p = b_p = 0 ∈ C for everyone (C = {0}); recompute:
        //  p0: C⁺ = {0} (from p1,p2) → a=1; C = {0} → b=1 → (1,1)
        //  p1: C⁺ = {0} (p2) → a=1; b=1
        //  p2: C⁺ = ∅ → a=0; C={0} → b=1 → (0,1)
        // Round 2: C for p0 = {1,1,0,1} = {0,1}; a=1 ∈ C, b=1 ∈ C →
        //  recompute: C⁺ = {a1,b1,a2,b2} = {1,0} → a=2; C={0,1} → b=2.
        //  p1: C = {a0,b0,a2,b2} = {1,0} ∪ ... = {0,1}; a=1∈C, b=1∈C →
        //   C⁺ = {0,1} (p2) → a=2; b=2.
        //  p2: C = {1} ∪ {1} = {1}; a=0 ∉ C → return 0.
        let topo = Topology::cycle(3).unwrap();
        let mut exec = Execution::new(&FiveColoring, &topo, vec![0, 1, 2]);
        exec.step_with(&ActivationSet::All);
        assert_eq!(
            (exec.state(ProcessId(0)).a, exec.state(ProcessId(0)).b),
            (1, 1)
        );
        assert_eq!(
            (exec.state(ProcessId(1)).a, exec.state(ProcessId(1)).b),
            (1, 1)
        );
        assert_eq!(
            (exec.state(ProcessId(2)).a, exec.state(ProcessId(2)).b),
            (0, 1)
        );
        exec.step_with(&ActivationSet::All);
        assert_eq!(exec.outputs()[2], Some(0), "local max returns 0");
        assert_eq!(
            (exec.state(ProcessId(0)).a, exec.state(ProcessId(0)).b),
            (2, 2)
        );
    }

    #[test]
    fn b_always_at_least_a() {
        // Paper (proof of Lemma 3.13): C⁺ ⊆ C ⟹ b_u ≥ a_u at all times.
        let ids = inputs::random_permutation(10, 11);
        let topo = Topology::cycle(10).unwrap();
        let mut exec = Execution::new(&FiveColoring, &topo, ids);
        let mut sched = RandomSubset::new(5, 0.5);
        for t in 0..500 {
            if exec.all_returned() {
                break;
            }
            let set = sched.next(t + 1, exec.working()).unwrap();
            exec.step_with(&set);
            for p in topo.nodes() {
                let s = exec.state(p);
                assert!(s.b >= s.a, "b < a at {p}: {s:?}");
            }
        }
    }

    #[test]
    fn theorem_3_11_terminates_with_5_colors() {
        for n in [3usize, 4, 5, 7, 12, 33, 100] {
            let (topo, report) = run_on_cycle(
                inputs::staircase(n),
                Synchronous::new(),
                30 * n as u64 + 100,
            );
            assert!(report.all_returned(), "n={n}");
            assert_valid(&topo, &report);
            let bound = 3 * n as u64 + 8;
            assert!(
                report.max_activations() <= bound,
                "n={n}: {} > {bound}",
                report.max_activations()
            );
        }
    }

    #[test]
    fn many_schedules_many_seeds() {
        for n in [3usize, 5, 8, 17] {
            for seed in 0..6u64 {
                let ids = inputs::random_unique(n, (n * n * n) as u64, seed);
                let fuel = 200 * n as u64 + 2000;
                let bound = 3 * n as u64 + 8;

                let (topo, report) = run_on_cycle(ids.clone(), RoundRobin::new(), fuel);
                assert!(report.all_returned());
                assert_valid(&topo, &report);
                assert!(report.max_activations() <= bound);

                let (topo, report) =
                    run_on_cycle(ids.clone(), RandomSubset::new(seed * 7 + 1, 0.3), fuel);
                assert!(report.all_returned());
                assert_valid(&topo, &report);
                assert!(report.max_activations() <= bound);

                let (topo, report) = run_on_cycle(ids, SoloRunner::ascending(n), fuel);
                assert!(report.all_returned());
                assert_valid(&topo, &report);
            }
        }
    }

    #[test]
    fn solo_runner_first_process_returns_instantly() {
        // With everyone else asleep, C = ∅ and a_p = 0 ∉ C.
        let (_, report) = run_on_cycle(vec![9, 5, 7, 1], SoloRunner::ascending(4), 100);
        assert_eq!(report.activations[0], 1);
        assert_eq!(report.outputs[0], Some(0));
    }

    #[test]
    fn crash_patterns_never_break_safety() {
        // Under crashes, *safety* (properness + palette) always holds —
        // even though termination of survivors can fail (see
        // `finding_crash_livelock_counterexample`). Drive executions for
        // a bounded number of steps and check the partial outputs.
        let n = 10;
        let topo = Topology::cycle(n).unwrap();
        for seed in 0..10u64 {
            let ids = inputs::random_permutation(n, seed);
            let crashes = (0..n)
                .filter(|&i| i % 2 == (seed % 2) as usize)
                .map(|i| (ProcessId(i), (seed % 7) + 1));
            let mut sched = CrashPlan::new(RandomSubset::new(seed, 0.6), crashes);
            let mut exec = Execution::new(&FiveColoring, &topo, ids);
            for t in 0..20_000u64 {
                if exec.all_returned() {
                    break;
                }
                let Some(set) = sched.next(t + 1, exec.working()) else {
                    break;
                };
                exec.step_with(&set);
            }
            assert!(
                topo.is_proper_partial_coloring(exec.outputs()),
                "seed {seed}: {:?}",
                exec.outputs()
            );
            for c in exec.outputs().iter().flatten() {
                assert!(*c <= 4, "palette violation: {c}");
            }
        }
    }

    /// **Reproduction finding.** Algorithm 2 *as written in the paper* is
    /// not wait-free once crashes are allowed: crash two processes right
    /// after their first activation so their registers freeze at
    /// `(a,b) = (0,0)`, arrange the surviving segment `p2–p3–p4` so that
    /// `p2` and `p4` are local maxima of the identifiers (their `a` is
    /// recomputed to 0 every round, permanently colliding with the frozen
    /// 0s) and `p3` is the shared local minimum. Under the synchronous
    /// schedule the three survivors' `b`-candidates then phase-lock in a
    /// period-2 oscillation and nobody ever returns, despite being
    /// activated forever.
    ///
    /// The gap in the paper: Lemma 3.13's proof step
    /// `|A_p| = |A_q| − 1 = |A_q′| + 1` presumes every neighbor's
    /// published `A`-set tracks the chain structure, which a
    /// crashed-after-one-activation register (with `Â = ∅`) violates.
    /// Algorithm 1 is immune — its return test compares full pairs, and
    /// `(0, b_p)` with `b_p ≥ 1` never equals a frozen `(0, 0)`. See
    /// DESIGN.md ("Reproduction findings") and experiment E6.
    #[test]
    fn finding_crash_livelock_counterexample() {
        let ids = vec![100, 10, 50, 5, 40, 8];
        let topo = Topology::cycle(6).unwrap();
        let mut exec = Execution::new(&FiveColoring, &topo, ids.clone());
        let crashes = [(ProcessId(0), 2), (ProcessId(1), 2), (ProcessId(5), 2)];
        let sched = CrashPlan::new(Synchronous::new(), crashes);
        let err = exec.run(sched, 10_000).unwrap_err();
        assert!(
            matches!(err, ftcolor_model::ModelError::NonTermination { .. }),
            "expected the documented livelock, got {err:?}"
        );
        // The survivors oscillate with period 2 — confirm the phase lock.
        let probe =
            |e: &Execution<'_, FiveColoring>| (e.state(ProcessId(2)).b, e.state(ProcessId(3)).a);
        let survivors = ActivationSet::of([ProcessId(2), ProcessId(3), ProcessId(4)]);
        let s0 = probe(&exec);
        exec.step_with(&survivors);
        let s1 = probe(&exec);
        exec.step_with(&survivors);
        assert_eq!(probe(&exec), s0, "period-2 oscillation");
        assert_ne!(s1, s0);
        // Safety is intact throughout: nobody output anything improper.
        assert!(topo.is_proper_partial_coloring(exec.outputs()));

        // Algorithm 1 on the same execution terminates fine.
        let mut exec1 = Execution::new(&crate::SixColoring, &topo, ids);
        let sched = CrashPlan::new(Synchronous::new(), crashes);
        let report = exec1.run(sched, 10_000).unwrap();
        assert_eq!(report.returned_count(), 3, "the three survivors return");
        assert!(topo.is_proper_partial_coloring(&report.outputs));
    }

    /// **Reproduction finding, minimal form (crash-free!).** Discovered
    /// automatically by the exhaustive model checker (E6): on `C3` with
    /// ids `0 < 1 < 2`, let `p0` run *solo* — it legitimately returns
    /// color 0 on its first activation, leaving its register frozen at
    /// `(x=0, a=0, b=0)` forever, as the model prescribes for terminated
    /// processes. Then run `p1, p2` in lockstep — a perfectly fair
    /// schedule with no crashes at all:
    ///
    /// * `p2` is the local max: `a2 ← mex(∅) = 0` every round, which
    ///   permanently collides with the *returned output* 0 sitting in
    ///   `p0`'s register (correctly so — outputting 0 would conflict);
    /// * `p1` and `p2`'s `b`-candidates then chase each other with
    ///   period 2: `(a1,b1), (a2,b2)` cycles through
    ///   `(1,1),(0,1) → (2,2),(0,2) → (1,1),(0,1) → …`
    ///
    /// Both processes are activated at every step and never return —
    /// contradicting Theorem 3.11's termination claim as stated. The
    /// escape requires the scheduler to *desynchronize* the pair (any
    /// solo activation lets one of them stabilize), which an adversary —
    /// or an unlucky lockstep system — need never do.
    #[test]
    fn finding_crash_free_livelock_on_c3() {
        let topo = Topology::cycle(3).unwrap();
        let mut exec = Execution::new(&FiveColoring, &topo, vec![0, 1, 2]);
        exec.step_with(&ActivationSet::solo(ProcessId(0)));
        assert_eq!(exec.outputs()[0], Some(0), "p0 returns color 0 solo");

        let pair = ActivationSet::of([ProcessId(1), ProcessId(2)]);
        // Warm up two steps, then verify the period-2 cycle.
        exec.step_with(&pair);
        exec.step_with(&pair);
        let probe = |e: &Execution<'_, FiveColoring>| {
            (
                *e.state(ProcessId(1)),
                *e.state(ProcessId(2)),
                e.register(ProcessId(1)).copied(),
                e.register(ProcessId(2)).copied(),
            )
        };
        let s0 = probe(&exec);
        exec.step_with(&pair);
        let s1 = probe(&exec);
        exec.step_with(&pair);
        assert_eq!(probe(&exec), s0, "period-2 livelock");
        assert_ne!(s1, s0);
        assert_eq!(exec.outputs()[1], None);
        assert_eq!(exec.outputs()[2], None);

        // The friendly scheduler escapes: one solo activation of p1
        // breaks the symmetry and everyone terminates.
        exec.step_with(&ActivationSet::solo(ProcessId(1)));
        let report = exec.run(Synchronous::new(), 100).unwrap();
        assert!(report.all_returned());
        assert!(topo.is_proper_partial_coloring(&report.outputs));
    }

    #[test]
    fn local_minimum_waits_for_neighbors_but_terminates() {
        // A local minimum's termination may lag its neighbors' (Theorem
        // 3.11 proof: ≤ one step after both neighbors terminate), but it
        // does terminate under a fair schedule.
        let ids = vec![5, 0, 7, 9, 12]; // position 1 is the global minimum
        let (topo, report) = run_on_cycle(ids, Synchronous::new(), 10_000);
        assert!(report.all_returned());
        assert_valid(&topo, &report);
    }

    #[test]
    fn five_colors_are_attainable() {
        // Search small adversarial executions for one that outputs all of
        // 0..=4 somewhere — evidence the palette bound is tight in
        // practice (Property 2.3 says no algorithm can do better than 5).
        let mut seen = std::collections::HashSet::new();
        for n in [5usize, 6, 7, 8] {
            for seed in 0..40u64 {
                let ids = inputs::random_permutation(n, seed);
                let (_, report) =
                    run_on_cycle(ids, RandomSubset::new(seed.wrapping_mul(31), 0.5), 100_000);
                for c in report.outputs.iter().flatten() {
                    seen.insert(*c);
                }
            }
        }
        assert!(
            seen.len() >= 4,
            "expected a rich palette across executions, saw {seen:?}"
        );
    }

    #[test]
    fn proper_coloring_inputs_work() {
        let ids = inputs::proper_k_coloring(20, 4);
        let (topo, report) = run_on_cycle(ids, Synchronous::new(), 10_000);
        assert!(report.all_returned());
        assert_valid(&topo, &report);
    }
}
