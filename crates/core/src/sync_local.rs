//! The classic **synchronous** baseline: Cole–Vishkin 3-coloring of the
//! oriented cycle in `½ log* n + O(1)` rounds.
//!
//! This is the algorithm the paper positions itself against (§1.1): in the
//! failure-free lock-step LOCAL model, 3-coloring the cycle takes
//! `Θ(log* n)` rounds — optimal by Linial's lower bound — but tolerates
//! neither asynchrony nor crashes. Experiment E9 compares its round count
//! with Algorithm 3's under the synchronous schedule.
//!
//! ## Implementation notes
//!
//! * The LOCAL model gives nodes an **orientation** (each node knows its
//!   successor) and knowledge of the identifier range. Here the input
//!   carries the node's position and the ring size; the algorithm object
//!   carries a width schedule derived from the maximum identifier.
//! * The classic reduction iterates `x ← 2i + x_i` where `i` is the first
//!   bit (within an agreed fixed width) at which `x` differs from the
//!   successor's value; fixed widths (rather than Eq. (6)'s `min |·|`
//!   cap) are what make the collision-freedom proof work for arbitrary,
//!   non-monotone neighbors.
//! * After the width schedule bottoms out at 3 bits, values lie in
//!   `{0..5}`; three *shift-down* sub-rounds recolor 5, 4, 3 away using
//!   `min N ∖ {neighbor colors}`, landing in `{0, 1, 2}`.
//! * The implementation is wrapped in an α-synchronizer (each node waits
//!   until both neighbors have published its current round), so it also
//!   runs — lock-step — under *any fair* schedule of the asynchronous
//!   model; under crashes it simply stalls, which is exactly the
//!   deficiency the paper's algorithms remove.

use crate::color::mex;
use ftcolor_model::logstar::bit_length;
use ftcolor_model::{Algorithm, Neighborhood, ProcessId, Step};
use serde::{Deserialize, Serialize};

/// One fixed-width Cole–Vishkin step: `2i + x_i` with `i` the least bit
/// where `x` and `y` differ (both interpreted as `width`-bit strings).
///
/// # Panics
///
/// Panics if `x == y` (the input must properly color the oriented cycle).
pub fn cv_step_fixed(x: u64, y: u64, width: u32) -> u64 {
    assert_ne!(x, y, "Cole–Vishkin requires distinct adjacent values");
    debug_assert!(bit_length(x) <= width && bit_length(y) <= width);
    let i = u64::from((x ^ y).trailing_zeros());
    2 * i + ((x >> i) & 1)
}

/// The agreed sequence of widths: starting from `width(max_id)`, each
/// round's values are `< 2·width`, so the next width is
/// `bit_length(2·width − 1)`; the schedule ends once the width reaches 3
/// (values in `{0..5}`). Its length is the paper's `O(log* n)` phase-1
/// round count.
pub fn width_schedule(max_id: u64) -> Vec<u32> {
    let mut w = bit_length(max_id).max(3);
    let mut out = vec![w];
    while w > 3 {
        w = bit_length(u64::from(2 * w - 1)).max(3);
        out.push(w);
    }
    out
}

/// Input to the baseline: the identifier plus the LOCAL-model extras
/// (position on the ring and ring size, which define the orientation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CvInput {
    /// The unique identifier.
    pub x: u64,
    /// The node's position on the ring (`0..n`).
    pub pos: usize,
    /// The ring size `n`.
    pub n: usize,
}

/// Register contents: position (to let neighbors identify their
/// successor), the synchronizer round, and the current and previous
/// values (a neighbor one round ahead exposes `prev`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CvReg {
    /// Publisher's ring position.
    pub pos: usize,
    /// Publisher's completed-round count.
    pub round: u32,
    /// Value at the publisher's current round.
    pub cur: u64,
    /// Value at the publisher's previous round.
    pub prev: u64,
}

/// Per-process state of the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CvState {
    pos: usize,
    succ_pos: usize,
    round: u32,
    cur: u64,
    prev: u64,
}

/// Synchronous Cole–Vishkin 3-coloring of the oriented ring.
///
/// Construct with [`ColeVishkinThree::for_max_id`]; all nodes must use
/// the same instance (the width schedule is global knowledge, as the
/// LOCAL model permits).
///
/// ```
/// use ftcolor_core::sync_local::{ColeVishkinThree, CvInput};
/// use ftcolor_model::prelude::*;
///
/// # fn main() -> Result<(), ftcolor_model::ModelError> {
/// let n = 50;
/// let ids: Vec<u64> = (0..n as u64).map(|i| i * 997 + 13).collect();
/// let alg = ColeVishkinThree::for_max_id(*ids.iter().max().unwrap());
/// let topo = Topology::cycle(n)?;
/// let inputs: Vec<CvInput> = ids.iter().enumerate()
///     .map(|(pos, &x)| CvInput { x, pos, n })
///     .collect();
/// let mut exec = Execution::new(&alg, &topo, inputs);
/// let report = exec.run(Synchronous::new(), 10_000)?;
/// assert!(report.all_returned());
/// let colors: Vec<u64> = report.outputs.iter().map(|c| c.unwrap()).collect();
/// assert!(topo.is_proper_coloring(&colors));
/// assert!(colors.iter().all(|&c| c <= 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ColeVishkinThree {
    widths: Vec<u32>,
}

impl ColeVishkinThree {
    /// Builds the baseline for identifiers in `[0, max_id]`.
    pub fn for_max_id(max_id: u64) -> Self {
        ColeVishkinThree {
            widths: width_schedule(max_id),
        }
    }

    /// Number of Cole–Vishkin reduction rounds (phase 1).
    pub fn phase1_rounds(&self) -> u32 {
        self.widths.len() as u32
    }

    /// Total rounds until every node returns: phase 1 plus three
    /// shift-down sub-rounds plus the final returning round.
    pub fn total_rounds(&self) -> u32 {
        self.phase1_rounds() + 3 + 1
    }

    /// Helper: the value a neighbor register exposes for round `r`, if
    /// available (`None` = that neighbor hasn't reached round `r` yet).
    fn value_at(reg: &CvReg, r: u32) -> Option<u64> {
        if reg.round == r {
            Some(reg.cur)
        } else if reg.round == r + 1 {
            Some(reg.prev)
        } else if reg.round > r + 1 {
            // Cannot happen under the synchronizer gate (a neighbor can
            // be at most one round ahead), but be defensive.
            None
        } else {
            None
        }
    }
}

impl Algorithm for ColeVishkinThree {
    type Input = CvInput;
    type State = CvState;
    type Reg = CvReg;
    type Output = u64;

    fn init(&self, _id: ProcessId, input: CvInput) -> CvState {
        CvState {
            pos: input.pos,
            succ_pos: (input.pos + 1) % input.n,
            round: 0,
            cur: input.x,
            prev: input.x,
        }
    }

    fn publish(&self, s: &CvState) -> CvReg {
        CvReg {
            pos: s.pos,
            round: s.round,
            cur: s.cur,
            prev: s.prev,
        }
    }

    fn step(&self, s: &mut CvState, view: &Neighborhood<'_, CvReg>) -> Step<u64> {
        let p1 = self.phase1_rounds();
        // Gather both neighbors' values at our round, if published.
        let vals: Vec<Option<(usize, u64)>> = view
            .iter()
            .map(|r| r.and_then(|r| Self::value_at(r, s.round).map(|v| (r.pos, v))))
            .collect();
        if vals.iter().any(Option::is_none) {
            return Step::Continue; // synchronizer: wait for stragglers
        }
        let vals: Vec<(usize, u64)> = vals.into_iter().flatten().collect();

        if s.round < p1 {
            // Phase 1: reduce against the successor.
            let width = self.widths[s.round as usize];
            let succ = vals
                .iter()
                .find(|(pos, _)| *pos == s.succ_pos)
                .expect("ring neighbor with successor position");
            s.prev = s.cur;
            s.cur = cv_step_fixed(s.cur, succ.1, width);
            s.round += 1;
            Step::Continue
        } else if s.round < p1 + 3 {
            // Phase 2: shift-down sub-rounds eliminating colors 5, 4, 3.
            let target = u64::from(5 - (s.round - p1));
            debug_assert!(s.cur <= 5, "phase 1 must land in 0..=5");
            s.prev = s.cur;
            if s.cur == target {
                s.cur = mex(vals.iter().map(|&(_, v)| v));
                debug_assert!(s.cur <= 2);
            }
            s.round += 1;
            Step::Continue
        } else {
            Step::Return(s.cur)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_model::inputs;
    use ftcolor_model::prelude::*;

    fn run_ring(ids: Vec<u64>, schedule: impl Schedule) -> (Topology, ExecutionReport<u64>) {
        let n = ids.len();
        let alg = ColeVishkinThree::for_max_id(*ids.iter().max().unwrap());
        let topo = Topology::cycle(n).unwrap();
        let inputs: Vec<CvInput> = ids
            .iter()
            .enumerate()
            .map(|(pos, &x)| CvInput { x, pos, n })
            .collect();
        let mut exec = Execution::new(&alg, &topo, inputs);
        let report = exec.run(schedule, 1_000_000).unwrap();
        (topo, report)
    }

    #[test]
    fn cv_step_fixed_preserves_properness_on_chains() {
        // For any pairwise-distinct triple along an oriented path,
        // f(x←y) ≠ f(y←z) — no monotonicity needed with fixed widths.
        for x in 0..64u64 {
            for y in 0..64u64 {
                for z in 0..64u64 {
                    if x != y && y != z {
                        assert_ne!(
                            cv_step_fixed(x, y, 6),
                            cv_step_fixed(y, z, 6),
                            "x={x} y={y} z={z}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn width_schedule_shrinks_like_log_star() {
        assert_eq!(width_schedule(5), vec![3]);
        assert_eq!(width_schedule(63), vec![6, 4, 3]);
        let s = width_schedule(u64::MAX);
        assert_eq!(s, vec![64, 7, 4, 3]);
        // Monotone decreasing, ends at 3.
        for w in s.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn three_colors_on_synchronous_rings() {
        for n in [3usize, 4, 7, 20, 100] {
            let ids = inputs::random_unique(n, (n as u64).pow(3).max(10), 42);
            let (topo, report) = run_ring(ids, Synchronous::new());
            assert!(report.all_returned(), "n={n}");
            let colors: Vec<u64> = report.outputs.iter().map(|c| c.unwrap()).collect();
            assert!(topo.is_proper_coloring(&colors), "n={n}: {colors:?}");
            assert!(colors.iter().all(|&c| c <= 2), "n={n}: {colors:?}");
        }
    }

    #[test]
    fn round_count_matches_width_schedule() {
        let n = 64;
        let ids = inputs::random_unique(n, 1 << 50, 7);
        let alg = ColeVishkinThree::for_max_id(*ids.iter().max().unwrap());
        let expected = u64::from(alg.total_rounds());
        let (_, report) = run_ring(ids, Synchronous::new());
        assert_eq!(report.max_activations(), expected);
        // log*-flavor: 50-bit ids need only 4 reduction rounds.
        assert_eq!(alg.phase1_rounds(), 4);
    }

    #[test]
    fn synchronizer_tolerates_async_fair_schedules() {
        // The α-synchronizer makes the baseline run (slowly) under any
        // fair schedule — though it stalls forever under crashes, unlike
        // the paper's algorithms.
        let n = 8;
        let ids = inputs::random_unique(n, 1000, 3);
        let (topo, report) = run_ring(ids.clone(), RoundRobin::new());
        assert!(report.all_returned());
        let colors: Vec<u64> = report.outputs.iter().map(|c| c.unwrap()).collect();
        assert!(topo.is_proper_coloring(&colors));
        assert!(colors.iter().all(|&c| c <= 2));

        let (topo, report) = run_ring(ids, RandomSubset::new(11, 0.4));
        assert!(report.all_returned());
        let colors: Vec<u64> = report.outputs.iter().map(|c| c.unwrap()).collect();
        assert!(topo.is_proper_coloring(&colors));
    }

    #[test]
    fn crash_stalls_the_baseline() {
        // Crash one node before it ever runs: its neighbors can never
        // complete round 0 and the execution cannot terminate — the
        // motivating failure the paper's wait-free algorithms avoid.
        let n = 6;
        let ids = inputs::random_unique(n, 100, 1);
        let alg = ColeVishkinThree::for_max_id(*ids.iter().max().unwrap());
        let topo = Topology::cycle(n).unwrap();
        let inputs_v: Vec<CvInput> = ids
            .iter()
            .enumerate()
            .map(|(pos, &x)| CvInput { x, pos, n })
            .collect();
        let mut exec = Execution::new(&alg, &topo, inputs_v);
        let sched = CrashPlan::new(Synchronous::new(), [(ProcessId(0), 1)]);
        // Fuel runs out with everyone else still alive but stuck at
        // round 0: the baseline is not wait-free.
        let err = exec.run(sched, 5_000).unwrap_err();
        assert!(matches!(
            err,
            ftcolor_model::ModelError::NonTermination { .. }
        ));
        assert_eq!(exec.outputs()[1], None);
        assert_eq!(exec.outputs()[n - 1], None);
    }

    #[test]
    #[should_panic(expected = "distinct adjacent values")]
    fn cv_step_rejects_equal_values() {
        cv_step_fixed(5, 5, 3);
    }
}
