//! Candidate **maximal independent set** algorithms — the problem that is
//! *impossible* wait-free in this model (Property 2.1).
//!
//! The paper proves (by reduction to strong symmetry breaking, which is
//! impossible in wait-free shared memory) that no algorithm solves MIS
//! on the asynchronous cycle:
//!
//! 1. every node that terminates with `Out` has a *terminating* neighbor
//!    with `In`, and
//! 2. no two terminating neighbors both output `In`.
//!
//! An impossibility cannot be executed; what we can do is implement the
//! natural candidate algorithms and let the model checker exhibit, for
//! each, a concrete schedule on which it fails — either violating one of
//! the two safety conditions or failing wait-freedom (never terminating
//! while being activated forever). Experiment E7 does exactly this, and
//! [`ftcolor_checker`'s `ssb` module](https://docs.rs/) carries the
//! reduction of the paper's proof.
//!
//! Each candidate is correct in the synchronous failure-free setting —
//! the failures are genuinely artifacts of asynchrony and crashes.

use ftcolor_model::{Algorithm, Neighborhood, ProcessId, Step};
use serde::{Deserialize, Serialize};

/// MIS verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MisOutput {
    /// The node joins the independent set (the paper's output 1).
    In,
    /// The node stays out (the paper's output 0).
    Out,
}

/// Register contents of the candidates: identifier plus tentative
/// verdict (`None` = undecided).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MisReg {
    /// The input identifier.
    pub x: u64,
    /// The tentative verdict published for neighbors to see.
    pub tentative: Option<MisOutput>,
}

/// Candidate 1: **LocalMaxMis** — join if you are a local maximum among
/// the neighbors you can see, with one confirmation round (the same
/// "publish, re-check, return" pattern that makes the coloring
/// algorithms correct).
///
/// *How it fails (E7, both found automatically by the model checker):*
///
/// * **Safety (stale-In retraction).** A node claims tentative `In`
///   while its bigger neighbor is asleep, then *retracts* on re-check
///   when that neighbor appears — but its other neighbor has already
///   committed `Out` against the stale claim. Crash the rest: the `Out`
///   node has no terminating `In` neighbor, violating MIS condition 1
///   (3-step counterexample on `C3`).
/// * **Liveness (starvation).** A process behind a crashed, forever-
///   undecided bigger register is activated forever without deciding —
///   violating wait-freedom.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalMaxMis;

impl LocalMaxMis {
    /// Creates the candidate.
    pub fn new() -> Self {
        LocalMaxMis
    }

    fn desired(x: u64, view: &Neighborhood<'_, MisReg>) -> Option<MisOutput> {
        if view.awake().any(|r| r.tentative == Some(MisOutput::In)) {
            Some(MisOutput::Out)
        } else if view
            .awake()
            .all(|r| r.tentative == Some(MisOutput::Out) || r.x < x)
        {
            // Local max among still-contending awake neighbors; asleep
            // neighbors are treated as absent — a wait-free algorithm
            // cannot wait for them.
            Some(MisOutput::In)
        } else {
            None
        }
    }
}

impl Algorithm for LocalMaxMis {
    type Input = u64;
    type State = MisReg;
    type Reg = MisReg;
    type Output = MisOutput;

    fn init(&self, _id: ProcessId, input: u64) -> MisReg {
        MisReg {
            x: input,
            tentative: None,
        }
    }

    fn publish(&self, state: &MisReg) -> MisReg {
        *state
    }

    fn step(&self, state: &mut MisReg, view: &Neighborhood<'_, MisReg>) -> Step<MisOutput> {
        let want = Self::desired(state.x, view);
        if let Some(d) = want {
            if want == state.tentative {
                // The published tentative survived a re-check: commit.
                return Step::Return(d);
            }
        }
        state.tentative = want;
        Step::Continue
    }

    // `desired` folds the view as a multiset and `MisReg` holds no
    // view-position-indexed data, so view reindexing is a no-op.
    fn relabel_view(&self, _state: &mut MisReg, _perm: &[usize]) -> bool {
        true
    }
}

/// Candidate 2: **ImpatientMis** — like [`LocalMaxMis`] but committing
/// immediately, without the confirmation round.
///
/// *How it fails (E7):* a round writes *before* reading, so a verdict
/// reached in the same round it is computed is never published: a node
/// returns `In` while its register forever shows "undecided", and a
/// lower-identifier neighbor waits on the frozen register — activated
/// forever without terminating. Wait-freedom is violated even under the
/// fully synchronous schedule, which illustrates why the paper's
/// algorithms return only values they have already published (Lemma 3.2's
/// `c_p(t) = c_p(t−1)` characterization).
#[derive(Debug, Clone, Copy, Default)]
pub struct ImpatientMis;

impl ImpatientMis {
    /// Creates the candidate.
    pub fn new() -> Self {
        ImpatientMis
    }
}

impl Algorithm for ImpatientMis {
    type Input = u64;
    type State = MisReg;
    type Reg = MisReg;
    type Output = MisOutput;

    fn init(&self, _id: ProcessId, input: u64) -> MisReg {
        MisReg {
            x: input,
            tentative: None,
        }
    }

    fn publish(&self, state: &MisReg) -> MisReg {
        *state
    }

    fn step(&self, state: &mut MisReg, view: &Neighborhood<'_, MisReg>) -> Step<MisOutput> {
        if view.awake().any(|r| r.tentative == Some(MisOutput::In)) {
            state.tentative = Some(MisOutput::Out);
            return Step::Return(MisOutput::Out);
        }
        if view
            .awake()
            .all(|r| r.tentative == Some(MisOutput::Out) || r.x < state.x)
        {
            state.tentative = Some(MisOutput::In);
            return Step::Return(MisOutput::In);
        }
        Step::Continue
    }

    // Multiset view folds only; no view-position-indexed state.
    fn relabel_view(&self, _state: &mut MisReg, _perm: &[usize]) -> bool {
        true
    }
}

/// Candidate 3: **EagerMis** — publishes its tentative verdict and, at
/// the next activation, commits it *blindly*, without re-checking the
/// neighborhood.
///
/// *How it fails (E7):* the skipped re-check is exactly what protects
/// [`LocalMaxMis`] from stale claims. Let `p` claim `In` while its bigger
/// neighbor `q` is still asleep; when `q` wakes it reads `p`'s register
/// *before `p` has published the claim* and, seeing only a smaller
/// undecided neighbor, claims `In` too; both then blind-commit —
/// two adjacent `In`s, violating MIS condition 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct EagerMis;

impl EagerMis {
    /// Creates the candidate.
    pub fn new() -> Self {
        EagerMis
    }
}

impl Algorithm for EagerMis {
    type Input = u64;
    type State = MisReg;
    type Reg = MisReg;
    type Output = MisOutput;

    fn init(&self, _id: ProcessId, input: u64) -> MisReg {
        MisReg {
            x: input,
            tentative: None,
        }
    }

    fn publish(&self, state: &MisReg) -> MisReg {
        *state
    }

    fn step(&self, state: &mut MisReg, view: &Neighborhood<'_, MisReg>) -> Step<MisOutput> {
        if let Some(d) = state.tentative {
            // Blind commit: the claim was published this round; return it
            // without looking at the neighborhood again.
            return Step::Return(d);
        }
        state.tentative = LocalMaxMis::desired(state.x, view);
        Step::Continue
    }

    // Multiset view folds only; no view-position-indexed state.
    fn relabel_view(&self, _state: &mut MisReg, _perm: &[usize]) -> bool {
        true
    }
}

/// Checks the two MIS safety conditions on the *terminated* nodes of a
/// cycle/graph execution. Returns the first violated condition as a
/// human-readable description, or `None` if the partial output is a
/// valid "MIS so far".
///
/// Condition 1 applies only to executions that have *ended* (no process
/// will run again); pass the outputs of a finished report.
pub fn mis_violation(
    topo: &ftcolor_model::Topology,
    outputs: &[Option<MisOutput>],
) -> Option<String> {
    // Condition 2: no two terminating neighbors both In.
    for (a, b) in topo.edges() {
        if outputs[a.index()] == Some(MisOutput::In) && outputs[b.index()] == Some(MisOutput::In) {
            return Some(format!("adjacent In/In on edge {a}-{b}"));
        }
    }
    // Condition 1: every terminating Out has a terminating In neighbor.
    for p in topo.nodes() {
        if outputs[p.index()] == Some(MisOutput::Out)
            && !topo
                .neighbors(p)
                .iter()
                .any(|q| outputs[q.index()] == Some(MisOutput::In))
        {
            return Some(format!("{p} is Out with no terminating In neighbor"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_model::prelude::*;

    #[test]
    fn local_max_mis_works_synchronously_failure_free() {
        // The candidate is *correct* under synchrony — the paper's point
        // is that asynchrony + crashes break MIS, not that naive code is
        // silly.
        for n in [3usize, 4, 5, 8, 11] {
            let topo = Topology::cycle(n).unwrap();
            let ids = ftcolor_model::inputs::random_permutation(n, n as u64);
            let mut exec = Execution::new(&LocalMaxMis, &topo, ids);
            let outputs = exec.run(Synchronous::new(), 10_000).unwrap().outputs;
            assert!(outputs.iter().all(Option::is_some), "n={n}");
            assert_eq!(mis_violation(&topo, &outputs), None, "n={n}: {outputs:?}");
        }
    }

    #[test]
    fn impatient_mis_stalls_even_synchronously() {
        // The unpublished-verdict flaw: once the local max returns In,
        // its register forever shows "undecided" and neighbors can never
        // decide — fuel runs out with processes still working.
        let topo = Topology::cycle(5).unwrap();
        let mut exec = Execution::new(&ImpatientMis, &topo, vec![1, 2, 3, 4, 5]);
        let err = exec.run(Synchronous::new(), 1_000).unwrap_err();
        assert!(matches!(
            err,
            ftcolor_model::ModelError::NonTermination { .. }
        ));
    }

    #[test]
    fn local_max_mis_starves_behind_a_crashed_undecided_neighbor() {
        // p3 (the global max on C4) is activated once — publishing only
        // its *initial* undecided register — and then crashes. Its
        // smaller neighbor p0 sees a bigger, forever-undecided register
        // and can never decide: activated forever, never terminates.
        // This is the wait-freedom violation Property 2.1 predicts.
        let topo = Topology::cycle(4).unwrap();
        let mut exec = Execution::new(&LocalMaxMis, &topo, vec![1, 2, 3, 4]);
        exec.step_with(&ActivationSet::solo(ProcessId(3)));
        assert_eq!(exec.register(ProcessId(3)).unwrap().tentative, None);
        for _ in 0..200 {
            exec.step_with(&ActivationSet::solo(ProcessId(0)));
        }
        assert_eq!(exec.outputs()[0], None, "p0 starves");
        assert_eq!(exec.activation_count(ProcessId(0)), 200);
    }

    #[test]
    fn eager_mis_commits_adjacent_in_in() {
        // The documented EagerMis safety violation, concretely on C4 with
        // ids p0=5, p1=9, p2=2, p3=1:
        //   t1: p0 runs alone (p1, p3 asleep) → tentative In (unpublished).
        //   t2: p1 runs: reads p0's register (5, None): smaller and
        //       undecided → p1 tentative In.
        //   t3: p0 publishes In and blind-commits In.
        //   t4: p1 publishes In and blind-commits In.
        // p0 and p1 are adjacent: condition 2 violated.
        let topo = Topology::cycle(4).unwrap();
        let mut exec = Execution::new(&EagerMis, &topo, vec![5, 9, 2, 1]);
        let sched = FixedSequence::from_indices([vec![0], vec![1], vec![0], vec![1]]);
        let report = exec.run(sched, 100).unwrap();
        assert_eq!(report.outputs[0], Some(MisOutput::In));
        assert_eq!(report.outputs[1], Some(MisOutput::In));
        let v = mis_violation(&topo, &report.outputs);
        assert!(
            v.unwrap().contains("In/In"),
            "expected an adjacent In/In violation"
        );
    }

    #[test]
    fn eager_mis_is_fine_when_wakeups_are_simultaneous() {
        // The violation needs staggered wake-ups: under the synchronous
        // schedule EagerMis behaves like LocalMaxMis and is correct.
        for n in [3usize, 5, 8] {
            let topo = Topology::cycle(n).unwrap();
            let ids = ftcolor_model::inputs::random_permutation(n, 7 * n as u64 + 1);
            let mut exec = Execution::new(&EagerMis, &topo, ids);
            let report = exec.run(Synchronous::new(), 10_000).unwrap();
            assert!(report.all_returned());
            assert_eq!(mis_violation(&topo, &report.outputs), None, "n={n}");
        }
    }

    #[test]
    fn impatient_mis_livelocks_behind_a_frozen_register() {
        // p1 (the global max on C3) returns In on its first activation,
        // but its register forever shows tentative = None. p0 (smaller)
        // sees a bigger, undecided neighbor and can never decide.
        let topo = Topology::cycle(3).unwrap();
        let mut exec = Execution::new(&ImpatientMis, &topo, vec![10, 30, 20]);
        exec.step_with(&ActivationSet::solo(ProcessId(1)));
        assert_eq!(exec.outputs()[1], Some(MisOutput::In));
        // Now p0 is activated many times; it never terminates.
        for _ in 0..100 {
            exec.step_with(&ActivationSet::solo(ProcessId(0)));
        }
        assert_eq!(
            exec.outputs()[0],
            None,
            "p0 is stuck: wait-freedom violated"
        );
        assert_eq!(exec.activation_count(ProcessId(0)), 100);
    }

    #[test]
    fn mis_violation_detects_adjacent_in() {
        let topo = Topology::cycle(4).unwrap();
        let outs = vec![
            Some(MisOutput::In),
            Some(MisOutput::In),
            Some(MisOutput::Out),
            Some(MisOutput::Out),
        ];
        assert!(mis_violation(&topo, &outs).unwrap().contains("In/In"));
    }

    #[test]
    fn mis_violation_accepts_valid_partial() {
        let topo = Topology::cycle(4).unwrap();
        let outs = vec![Some(MisOutput::In), Some(MisOutput::Out), None, None];
        assert_eq!(mis_violation(&topo, &outs), None);
    }
}
