//! Wait-free **3-coloring** of the ring in the DECOUPLED model — the
//! algorithm of the paper's closest related work (Castañeda, Delporte-
//! Gallet, Fauconnier, Rajsbaum, Raynal \[13\]), in the simulation style
//! of \[18\]: *wait for the network to deliver a big enough ball, then run
//! the synchronous algorithm locally*.
//!
//! In DECOUPLED (see [`ftcolor_model::decoupled`]) a process's knowledge
//! radius equals the wall-clock time, regardless of anyone's crashes.
//! Once the radius reaches `R = P + 3` (with `P` the length of the
//! universal Cole–Vishkin width schedule for 64-bit identifiers, so
//! `R = 7`), a process can *locally* simulate all `P` reduction rounds
//! plus the three shift-down rounds of the synchronous 3-coloring for
//! its own node, and output. Every process decides within `R` wall-clock
//! steps and at most `R` activations — wait-free with **3 colors**,
//! where the fully asynchronous model needs **5** (Property 2.3): the
//! model separation measured by experiment E11.

use crate::sync_local::{cv_step_fixed, width_schedule};
use ftcolor_model::decoupled::{DecoupledAlgorithm, Knowledge};
use ftcolor_model::{ProcessId, Time};

/// The universal width schedule (identifiers up to `u64::MAX`):
/// `[64, 7, 4, 3]`, so `P = 4` reduction rounds.
fn universal_widths() -> Vec<u32> {
    width_schedule(u64::MAX)
}

/// DECOUPLED wait-free 3-coloring of the ring.
///
/// ```
/// use ftcolor_core::decoupled_ring::DecoupledThreeColoring;
/// use ftcolor_model::decoupled::DecoupledExecution;
/// use ftcolor_model::prelude::*;
///
/// # fn main() -> Result<(), ftcolor_model::ModelError> {
/// let n = 20;
/// let topo = Topology::cycle(n)?;
/// let ids: Vec<u64> = (0..n as u64).map(|i| i * 977 + 11).collect();
/// let alg = DecoupledThreeColoring::new();
/// let mut exec = DecoupledExecution::new(&alg, &topo, ids);
/// let report = exec.run(RandomSubset::new(3, 0.5), 10_000)?;
/// assert!(report.all_returned());
/// let colors: Vec<u64> = report.outputs.iter().map(|c| c.unwrap()).collect();
/// assert!(topo.is_proper_coloring(&colors));
/// assert!(colors.iter().all(|&c| c <= 2), "three colors");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DecoupledThreeColoring {
    widths: Vec<u32>,
}

impl DecoupledThreeColoring {
    /// Creates the algorithm with the universal width schedule.
    pub fn new() -> Self {
        DecoupledThreeColoring {
            widths: universal_widths(),
        }
    }

    /// The knowledge radius a process needs before it can decide:
    /// `P + 3` (reduction rounds plus shift-down rounds).
    pub fn required_radius(&self) -> usize {
        self.widths.len() + 3
    }

    /// Simulates the synchronous algorithm for position `me` given the
    /// identifiers of the window `me − R ..= me + R` (window case) or of
    /// the whole ring (when `2R + 1 ≥ n`).
    fn simulate(&self, me: usize, n: usize, id_at: impl Fn(usize) -> u64) -> u64 {
        let r = self.required_radius();
        if 2 * r + 1 >= n {
            // Whole-ring simulation with wraparound.
            let mut vals: Vec<u64> = (0..n).map(&id_at).collect();
            for &w in &self.widths {
                let next: Vec<u64> = (0..n)
                    .map(|i| cv_step_fixed(vals[i], vals[(i + 1) % n], w))
                    .collect();
                vals = next;
            }
            for sub in 0..3u64 {
                let target = 5 - sub;
                let next: Vec<u64> = (0..n)
                    .map(|i| {
                        if vals[i] == target {
                            crate::color::mex([vals[(i + n - 1) % n], vals[(i + 1) % n]])
                        } else {
                            vals[i]
                        }
                    })
                    .collect();
                vals = next;
            }
            vals[me]
        } else {
            // Window simulation: index o ∈ 0..2R+1 is position me−R+o.
            let len = 2 * r + 1;
            let mut vals: Vec<u64> = (0..len).map(|o| id_at((me + n - r + o) % n)).collect();
            // Phase 1 shrinks the window from the right (each value needs
            // its successor).
            let mut hi = len; // exclusive upper bound of valid entries
            for &w in &self.widths {
                for i in 0..hi - 1 {
                    vals[i] = cv_step_fixed(vals[i], vals[i + 1], w);
                }
                hi -= 1;
            }
            // Phase 2 shrinks from both sides (each value needs both
            // neighbors).
            let mut lo = 0;
            for sub in 0..3u64 {
                let target = 5 - sub;
                let prev = vals.clone();
                for i in lo + 1..hi - 1 {
                    if prev[i] == target {
                        vals[i] = crate::color::mex([prev[i - 1], prev[i + 1]]);
                    }
                }
                lo += 1;
                hi -= 1;
            }
            debug_assert!((lo..hi).contains(&r), "center must stay valid");
            vals[r]
        }
    }
}

impl Default for DecoupledThreeColoring {
    fn default() -> Self {
        Self::new()
    }
}

impl DecoupledAlgorithm for DecoupledThreeColoring {
    type Input = u64;
    type Output = u64;

    fn decide(&self, me: ProcessId, time: Time, k: &Knowledge<'_, u64>) -> Option<u64> {
        let r = self.required_radius();
        let n = k.topology().len();
        // Decide once the ball has radius R — or already covers the whole
        // ring (small n), in which case the global simulation is possible
        // immediately.
        let covered = 2 * k.radius() >= n.saturating_sub(1);
        if (time as usize) < r && !covered {
            return None; // wait — safe in DECOUPLED, fatal in the async model
        }
        let color = self.simulate(me.index(), n, |pos| {
            *k.input_of(ProcessId(pos))
                .expect("radius R ball delivered by the network")
        });
        Some(color)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_model::decoupled::DecoupledExecution;
    use ftcolor_model::inputs;
    use ftcolor_model::prelude::*;

    fn run_ring(
        ids: Vec<u64>,
        schedule: impl Schedule,
    ) -> (Topology, ftcolor_model::ExecutionReport<u64>) {
        let topo = Topology::cycle(ids.len()).unwrap();
        let alg = DecoupledThreeColoring::new();
        let mut exec = DecoupledExecution::new(&alg, &topo, ids);
        let report = exec.run(schedule, 100_000).unwrap();
        (topo, report)
    }

    #[test]
    fn three_colors_proper_across_sizes() {
        for n in [3usize, 5, 8, 14, 15, 16, 40, 200] {
            let ids = inputs::random_unique(n, 1 << 50, n as u64);
            let (topo, report) = run_ring(ids, Synchronous::new());
            assert!(report.all_returned(), "n={n}");
            let colors: Vec<u64> = report.outputs.iter().map(|c| c.unwrap()).collect();
            assert!(topo.is_proper_coloring(&colors), "n={n}: {colors:?}");
            assert!(colors.iter().all(|&c| c <= 2), "n={n}: {colors:?}");
        }
    }

    #[test]
    fn wait_free_in_constant_activations() {
        let n = 64;
        let ids = inputs::staircase_poly(n);
        let (_, report) = run_ring(ids, Synchronous::new());
        let r = DecoupledThreeColoring::new().required_radius() as u64;
        assert_eq!(report.max_activations(), r, "decide exactly at radius R");
    }

    #[test]
    fn crashes_cannot_block_survivors() {
        // Crash 80% of the ring at time 1 — in the async model this cuts
        // every path; here the network keeps relaying and the survivors
        // 3-color themselves.
        let n = 30;
        let ids = inputs::random_unique(n, 10_000, 3);
        let topo = Topology::cycle(n).unwrap();
        let alg = DecoupledThreeColoring::new();
        let crashes = (0..n).filter(|i| i % 5 != 0).map(|i| (ProcessId(i), 1));
        let sched = CrashPlan::new(Synchronous::new(), crashes);
        let mut exec = DecoupledExecution::new(&alg, &topo, ids);
        let report = exec.run(sched, 10_000).unwrap();
        for i in (0..n).step_by(5) {
            let c = report.outputs[i].expect("survivor decided");
            assert!(c <= 2);
        }
        assert!(topo.is_proper_partial_coloring(&report.outputs));
    }

    #[test]
    fn late_single_activation_decides_at_once() {
        let n = 20;
        let ids = inputs::random_unique(n, 10_000, 9);
        let topo = Topology::cycle(n).unwrap();
        let alg = DecoupledThreeColoring::new();
        let mut exec = DecoupledExecution::new(&alg, &topo, ids);
        // 10 idle steps (the network works alone), then one activation.
        let mut steps: Vec<Vec<usize>> = vec![vec![]; 10];
        steps.push(vec![7]);
        let report = exec.run(FixedSequence::from_indices(steps), 100).unwrap();
        assert!(report.outputs[7].is_some());
        assert_eq!(report.activations[7], 1);
    }

    #[test]
    fn simulation_agrees_with_the_global_synchronous_run() {
        // The window simulation must agree with simulating the whole
        // ring — locality of the synchronous algorithm, checked.
        let n = 64;
        let ids = inputs::random_unique(n, 1 << 40, 4);
        let alg = DecoupledThreeColoring::new();
        let global: Vec<u64> = (0..n)
            .map(|v| {
                // Whole-ring reference.
                alg.simulate(v, n, |pos| ids[pos])
            })
            .collect();
        // Window path (forced by using a virtual larger radius check):
        // run the actual executor, which uses windows for n = 64 > 2R+1.
        let (_, report) = {
            let topo = Topology::cycle(n).unwrap();
            let mut exec = DecoupledExecution::new(&alg, &topo, ids.clone());
            let report = exec.run(Synchronous::new(), 1000).unwrap();
            (topo, report)
        };
        for (v, expected) in global.iter().enumerate() {
            assert_eq!(report.outputs[v], Some(*expected), "node {v}");
        }
    }

    #[test]
    fn model_separation_three_vs_five() {
        // The headline of E11: same ring, same ids — 3 colors in
        // DECOUPLED, 5 needed in the fully asynchronous model (where our
        // algorithms use exactly {0..4} and Property 2.3 forbids fewer).
        let n = 12;
        let ids = inputs::random_unique(n, 1000, 5);
        let (_, dec) = run_ring(ids.clone(), RandomSubset::new(2, 0.5));
        let dec_palette = dec.outputs.iter().flatten().copied().max().unwrap();
        assert!(dec_palette <= 2);

        let topo = Topology::cycle(n).unwrap();
        let mut exec = Execution::new(&crate::FastFiveColoring, &topo, ids);
        let rep = exec.run(RandomSubset::new(2, 0.5), 100_000).unwrap();
        assert!(rep.outputs.iter().flatten().all(|&c| c <= 4));
    }
}
