//! A **candidate repair** of Algorithm 2's livelock (see
//! [`crate::alg2`]'s "Reproduction finding") — and an experimental map
//! of why repairing it is hard.
//!
//! ## The repair: counter-priority arbitration with a frozen-view escape
//!
//! The livelock is a parallel-recolor resonance: conflicting neighbors
//! recompute their candidates *simultaneously*, forever reacting to each
//! other. The patched algorithm leaves the paper's update **formulas**,
//! return rule, and palette untouched, adding only an arbitration that
//! decides *when* an update is applied:
//!
//! * every register additionally carries an **update counter** `c_p`,
//!   incremented whenever the process applies a change to `a` or `b`;
//! * a process may move a candidate only with **priority**: its pair
//!   `(c_p, X_p)` is lexicographically smaller than that of every awake
//!   neighbor whose published components collide with the candidate's
//!   current value. In a conflicting pair exactly one side moves, so the
//!   symmetric resonance cannot occur, and after moving the mover's
//!   counter rises, handing priority over;
//! * **frozen-view escape**: a process whose entire neighborhood reads
//!   exactly as it did at its previous activation waives arbitration and
//!   applies the paper's rule. This preserves wait-freedom against
//!   crashed or returned neighbors (whose frozen registers would hold
//!   priority forever): against a constant `C`, `b ← min N ∖ C` is
//!   collision-free one activation later.
//!
//! ## What is proved, what is checked, what is open
//!
//! * **No execution can revisit a configuration** (a real, if small,
//!   theorem): a configuration cycle applies no updates (counters are
//!   monotone and part of the configuration), so no register changes
//!   inside the cycle, so by each process's second activation in the
//!   cycle its view is frozen, so the escape clause applies the paper's
//!   update — which *must* change `b`, since a non-returning process has
//!   `b ∈ C` and `min N ∖ C ∉ C`. Contradiction. Hence the unpatched
//!   algorithm's failure mode — a finite livelock witness — **cannot
//!   exist** for the patched algorithm.
//! * **Checked**: safety is the paper's verbatim (palette `{0,…,4}`,
//!   proper outputs — the arbitration never changes *what* is written,
//!   only *when*); 8-million-configuration exhaustive searches on C3/C4
//!   find no violation and, necessarily, no cycle; every known adversary
//!   against the unpatched algorithm (the solo-then-lockstep C3 pattern,
//!   the C6 crash pattern, laggards, waves, random crash sweeps)
//!   terminates within small constant factors of the paper's bounds.
//! * **Open**: divergence without repetition ("infinite chatter", the
//!   counter growing forever) is not excluded by the no-revisit theorem,
//!   and because the counter is unbounded the reachable configuration
//!   space is not finite, so exhaustion cannot certify termination
//!   outright.
//!
//! ## Why not something simpler? (negative results, all machine-found)
//!
//! Experiment E6's checker refuted every bounded-memory variant we
//! tried, each within seconds:
//!
//! * *flip-back damping* (hold a candidate when the recomputation would
//!   restore the value it held before its last change, and the conflict
//!   comes from above): the adversary interleaves extra solo steps,
//!   producing a period-4 resonance invisible to one step of memory;
//! * *X-priority damping without counters*: freezes the bootstrap or
//!   (with collision scoping) livelocks behind pinned `a = 0` values;
//! * *saturating counter + bounded hold-streak escape* (finite state,
//!   so certifiable in principle): the adversary aligns the escape
//!   phases of a blocked pair and the simultaneous escapes resonate.
//!
//! The pattern — every finite-memory symmetry breaker loses to an
//! adaptive scheduler — suggests the paper's wait-freedom gap is
//! structural rather than a transcription slip: breaking the resonance
//! deterministically appears to need unbounded information (counters,
//! as here) or the full chain-potential argument the paper intended.

use crate::color::mex;
use ftcolor_model::{Algorithm, Neighborhood, PorCert, ProcessId, Step};
use serde::{Deserialize, Serialize};

/// Register contents of the patched algorithm: Algorithm 2's triple plus
/// the update counter used for priority arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg2P {
    /// The (static) input identifier `X_p`.
    pub x: u64,
    /// First candidate color (avoids higher-identifier neighbors only).
    pub a: u64,
    /// Second candidate color (avoids all neighbor components).
    pub b: u64,
    /// Number of updates this process has applied.
    pub c: u64,
}

/// Private state: the published register plus the previous view (used
/// only for the frozen-view escape; never published).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State2P {
    /// The published part.
    pub reg: Reg2P,
    /// Neighbor registers read at the previous activation (`None` before
    /// the first activation; inner `None`s are `⊥` registers).
    pub last_view: Option<Vec<Option<Reg2P>>>,
}

/// Algorithm 2 with counter-priority arbitration. Identical safety and
/// palette; provably free of configuration cycles (the unpatched
/// algorithm's failure mode). See the [module docs](self) for exactly
/// what is and is not established.
///
/// ```
/// use ftcolor_core::alg2_patched::FiveColoringPatched;
/// use ftcolor_model::prelude::*;
///
/// # fn main() -> Result<(), ftcolor_model::ModelError> {
/// let topo = Topology::cycle(6)?;
/// let mut exec = Execution::new(&FiveColoringPatched, &topo, vec![3, 14, 15, 92, 65, 35]);
/// let report = exec.run(RandomSubset::new(1, 0.5), 100_000)?;
/// assert!(report.all_returned());
/// let colors: Vec<u64> = report.outputs.iter().map(|c| c.unwrap()).collect();
/// assert!(topo.is_proper_coloring(&colors));
/// assert!(colors.iter().all(|&c| c <= 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FiveColoringPatched;

impl FiveColoringPatched {
    /// Creates the algorithm object (stateless; all state is per-process).
    pub fn new() -> Self {
        FiveColoringPatched
    }
}

impl Algorithm for FiveColoringPatched {
    type Input = u64;
    type State = State2P;
    type Reg = Reg2P;
    type Output = u64;

    fn init(&self, _id: ProcessId, input: u64) -> State2P {
        State2P {
            reg: Reg2P {
                x: input,
                a: 0,
                b: 0,
                c: 0,
            },
            last_view: None,
        }
    }

    fn publish(&self, state: &State2P) -> Reg2P {
        state.reg
    }

    fn step(&self, state: &mut State2P, view: &Neighborhood<'_, Reg2P>) -> Step<u64> {
        let current: Vec<Option<Reg2P>> = view.iter().map(Option::<&Reg2P>::copied).collect();

        // Paper lines 9–10: the return checks, verbatim.
        let in_c = |v: u64| view.awake().any(|r| r.a == v || r.b == v);
        if !in_c(state.reg.a) {
            return Step::Return(state.reg.a);
        }
        if !in_c(state.reg.b) {
            return Step::Return(state.reg.b);
        }

        // Paper lines 12–13: the recomputations, verbatim…
        let me = state.reg;
        let new_a = mex(view.awake().filter(|r| r.x > me.x).flat_map(|r| [r.a, r.b]));
        let new_b = mex(view.awake().flat_map(|r| [r.a, r.b]));

        // …gated by counter-priority arbitration with the frozen-view
        // escape (see module docs).
        let escape = state.last_view.as_deref() == Some(&current[..]);
        let have_priority = |val: u64| {
            view.awake()
                .filter(|r| r.a == val || r.b == val)
                .all(|r| (me.c, me.x) < (r.c, r.x))
        };
        let mut changed = false;
        if new_a != me.a && (escape || have_priority(me.a)) {
            state.reg.a = new_a;
            changed = true;
        }
        if new_b != me.b && (escape || have_priority(me.b)) {
            state.reg.b = new_b;
            changed = true;
        }
        if changed {
            state.reg.c += 1;
        }
        state.last_view = Some(current);
        Step::Continue
    }

    // `step` folds the live view as a multiset, but `last_view` is
    // stored *by view position* (the frozen-view escape compares it
    // entry-wise against the next read), so it must be reindexed when a
    // relabeling changes the neighbor order this process sees.
    fn relabel_view(&self, state: &mut State2P, perm: &[usize]) -> bool {
        if let Some(v) = &mut state.last_view {
            debug_assert_eq!(v.len(), perm.len());
            let old = v.clone();
            for (k, &src) in perm.iter().enumerate() {
                v[k] = old[src];
            }
        }
        true
    }

    // A pure rule (no interior mutability; `last_view` lives in the
    // per-process state, not the algorithm object) whose solo
    // termination from every reachable state is proven by the static
    // certifier (`FTC-TERM-007`), so both POR layers are sound.
    fn por_certificate(&self) -> PorCert {
        PorCert::CommutingTerminating
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_model::inputs;
    use ftcolor_model::prelude::*;

    fn assert_valid(topo: &Topology, outputs: &[Option<u64>]) {
        assert!(
            topo.is_proper_partial_coloring(outputs),
            "improper: {outputs:?}"
        );
        for c in outputs.iter().flatten() {
            assert!(*c <= 4, "palette violation: {c}");
        }
    }

    #[test]
    fn escapes_the_c3_livelock() {
        // The exact adversary that starves unpatched Algorithm 2
        // (alg2::tests::finding_crash_free_livelock_on_c3): p0 solo, then
        // {p1, p2} in lockstep forever.
        let topo = Topology::cycle(3).unwrap();
        let mut exec = Execution::new(&FiveColoringPatched, &topo, vec![0, 1, 2]);
        exec.step_with(&ActivationSet::solo(ProcessId(0)));
        assert_eq!(exec.outputs()[0], Some(0));
        let pair = ActivationSet::of([ProcessId(1), ProcessId(2)]);
        for _ in 0..50 {
            if exec.all_returned() {
                break;
            }
            exec.step_with(&pair);
        }
        assert!(exec.all_returned(), "patched algorithm must escape");
        assert_valid(&topo, exec.outputs());
    }

    #[test]
    fn escapes_the_c6_crash_livelock() {
        let ids = vec![100, 10, 50, 5, 40, 8];
        let topo = Topology::cycle(6).unwrap();
        let mut exec = Execution::new(&FiveColoringPatched, &topo, ids);
        let crashes = [(ProcessId(0), 2), (ProcessId(1), 2), (ProcessId(5), 2)];
        let sched = CrashPlan::new(Synchronous::new(), crashes);
        let report = exec.run(sched, 10_000).unwrap();
        assert_eq!(report.returned_count(), 3, "all three survivors return");
        assert_valid(&topo, &report.outputs);
    }

    #[test]
    fn survives_frozen_neighbors_on_both_sides() {
        // Both neighbors crash-frozen: the frozen-view escape lets the
        // middle process exit via b = mex(constant C).
        let topo = Topology::cycle(3).unwrap();
        let mut exec = Execution::new(&FiveColoringPatched, &topo, vec![5, 1, 9]);
        exec.step_with(&ActivationSet::of([ProcessId(0), ProcessId(2)]));
        for _ in 0..20 {
            if exec.outputs()[1].is_some() {
                break;
            }
            exec.step_with(&ActivationSet::solo(ProcessId(1)));
        }
        assert!(exec.outputs()[1].is_some(), "middle process must return");
        assert_valid(&topo, exec.outputs());
    }

    #[test]
    fn terminates_within_relaxed_linear_bounds() {
        // Arbitration serializes conflicting updates, so rounds may grow
        // by a constant factor over the unpatched 3n+8.
        for n in [3usize, 7, 20, 64] {
            for seed in 0..4u64 {
                let ids = inputs::random_unique(n, (n as u64).pow(3), seed);
                let topo = Topology::cycle(n).unwrap();

                let mut patched = Execution::new(&FiveColoringPatched, &topo, ids.clone());
                let rp = patched
                    .run(RandomSubset::new(seed, 0.5), 1_000_000)
                    .unwrap();
                assert!(rp.all_returned(), "n={n} seed={seed}");
                assert_valid(&topo, &rp.outputs);
                assert!(
                    rp.max_activations() <= 9 * n as u64 + 24,
                    "n={n} seed={seed}: {}",
                    rp.max_activations()
                );

                let mut sync = Execution::new(&FiveColoringPatched, &topo, ids);
                let rs = sync.run(Synchronous::new(), 1_000_000).unwrap();
                assert!(rs.all_returned());
                assert_valid(&topo, &rs.outputs);
                assert!(rs.max_activations() <= 9 * n as u64 + 24);
            }
        }
    }

    #[test]
    fn staircase_stays_linear_not_worse() {
        let n = 200;
        let ids = inputs::staircase(n);
        let topo = Topology::cycle(n).unwrap();
        let mut exec = Execution::new(&FiveColoringPatched, &topo, ids);
        let report = exec.run(Synchronous::new(), 100_000).unwrap();
        assert!(report.all_returned());
        assert!(report.max_activations() <= 9 * n as u64 + 24);
    }

    #[test]
    fn crash_sweeps_all_survivors_return() {
        // The cells where unpatched Algorithm 2 can starve: here every
        // survivor must terminate.
        let n = 40;
        let topo = Topology::cycle(n).unwrap();
        for seed in 0..8u64 {
            let ids = inputs::random_unique(n, 1 << 30, seed);
            let crash_ids: std::collections::HashSet<usize> =
                (0..n).filter(|&i| i as u64 % 4 == seed % 4).collect();
            let crashes = crash_ids.iter().map(|&i| (ProcessId(i), seed % 6 + 1));
            let sched = CrashPlan::new(Synchronous::new(), crashes);
            let mut exec = Execution::new(&FiveColoringPatched, &topo, ids);
            let report = exec.run(sched, 100_000).unwrap();
            assert_valid(&topo, &report.outputs);
            for i in 0..n {
                if !crash_ids.contains(&i) {
                    assert!(
                        report.outputs[i].is_some(),
                        "seed {seed}: survivor p{i} starved"
                    );
                }
            }
        }
    }

    #[test]
    fn laggards_and_waves_terminate() {
        for n in [9usize, 24] {
            let ids = inputs::staircase_poly(n);
            let topo = Topology::cycle(n).unwrap();
            for slow in [0usize, n / 2] {
                let mut exec = Execution::new(&FiveColoringPatched, &topo, ids.clone());
                let report = exec
                    .run(Laggard::new(ProcessId(slow), 37), 1_000_000)
                    .unwrap();
                assert!(report.all_returned(), "laggard {slow}");
                assert_valid(&topo, &report.outputs);
            }
            let mut exec = Execution::new(&FiveColoringPatched, &topo, ids.clone());
            let report = exec.run(Wave::new(n, 2, 1), 1_000_000).unwrap();
            assert!(report.all_returned());
            assert_valid(&topo, &report.outputs);
        }
    }

    #[test]
    fn counters_do_grow_but_stay_small_in_practice() {
        let n = 30;
        let ids = inputs::random_unique(n, 1 << 20, 7);
        let topo = Topology::cycle(n).unwrap();
        let mut exec = Execution::new(&FiveColoringPatched, &topo, ids);
        exec.run(RandomSubset::new(9, 0.5), 1_000_000).unwrap();
        for p in topo.nodes() {
            assert!(
                exec.state(p).reg.c <= 20,
                "{p}: c = {}",
                exec.state(p).reg.c
            );
        }
    }
}
