//! Intentionally-buggy algorithms: negative fixtures for `ftcolor-analyze`.
//!
//! Each mutant violates exactly one §2 state-model contract, chosen so
//! that the corresponding linter rule — and, for well-behaved rules,
//! *only* that rule — fires on it. They double as documentation of what
//! each contract forbids:
//!
//! | Mutant | Contract broken | Rule expected to fire |
//! |---|---|---|
//! | [`NeighborWriter`] | single-writer registers | `FTC-SWMR-001` |
//! | [`StateSmuggler`] | snapshot scope (reads only the handed view) | `FTC-SNAP-002` |
//! | [`UnstableDecider`] | decision stability | `FTC-STAB-003` |
//! | [`OutOfPalette`] | declared palette bound | `FTC-PAL-004` |
//! | [`NondetStepper`] | step determinism | `FTC-DET-005` |
//! | [`SoloDiverger`] | solo wait-freedom | `FTC-WF-006` |
//! | [`SoloLoiterer`] | solo termination from reachable states | `FTC-TERM-007` |
//! | [`UnboundedCounter`] | bounded-state discipline | `FTC-DOM-008` |
//!
//! [`PorLiar`] is a ninth fixture of a different kind: it breaks no §2
//! contract a linter rule watches, but *lies about its POR independence
//! certificate* — the model checker's dynamic commutation probe must
//! refuse it before any reduced exploration starts.
//!
//! The last two table rows target the *static* certifier specifically: both are
//! invisible to the dynamic linter (solo runs from initial states
//! terminate immediately, and no dynamic rule watches state growth), so
//! they gate exactly the coverage `ftcolor certify` adds.
//!
//! The illegal channels are built from [`Cell`]/[`RefCell`] interior
//! mutability *inside the algorithm object* — exactly the smuggling the
//! model forbids (an `Algorithm` must be a pure rule: all per-process
//! information lives in `State`, all communication in registers). The
//! linter runs single-threaded, so none of these need to be `Sync`;
//! they are **not** exported from the crate prelude and must never be
//! used outside analyzer tests.

use ftcolor_model::{Algorithm, Neighborhood, PorCert, ProcessId, Step};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

/// Violates **SWMR**: every step writes into *another process's*
/// register through a shared shadow register file.
///
/// `publish` reads the shadow file, so a step of process `p` changes
/// what process `(p+1) % n` will publish — a write to a register `p`
/// does not own. Step outcomes themselves are deterministic functions
/// of the local state, so no other rule fires.
#[derive(Debug)]
pub struct NeighborWriter {
    shadow: RefCell<Vec<u64>>,
}

impl NeighborWriter {
    /// A shadow register file for `n` processes.
    pub fn new(n: usize) -> Self {
        NeighborWriter {
            shadow: RefCell::new(vec![0; n]),
        }
    }
}

/// State of [`NeighborWriter`]: own index, input, and a round counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NwState {
    /// Own process index (used to pick the victim register).
    pub id: usize,
    /// The input identifier.
    pub x: u64,
    /// Rounds performed.
    pub rounds: u64,
}

impl Algorithm for NeighborWriter {
    type Input = u64;
    type State = NwState;
    type Reg = u64;
    type Output = u64;

    fn init(&self, id: ProcessId, x: u64) -> NwState {
        NwState {
            id: id.index(),
            x,
            rounds: 0,
        }
    }

    fn publish(&self, s: &NwState) -> u64 {
        s.x + self.shadow.borrow()[s.id]
    }

    fn step(&self, s: &mut NwState, _view: &Neighborhood<'_, u64>) -> Step<u64> {
        let mut shadow = self.shadow.borrow_mut();
        let victim = (s.id + 1) % shadow.len();
        shadow[victim] += 1; // the foreign write
        s.rounds += 1;
        if s.rounds >= 2 {
            Step::Return(s.x % 5)
        } else {
            Step::Continue
        }
    }
}

/// Violates **snapshot scope**: the deciding step reads a shared
/// "blackboard" cell that other processes' steps keep writing — state
/// smuggled around the register abstraction.
///
/// The channel is crafted to stay invisible to back-to-back determinism
/// probes (the return path never writes the blackboard, so two
/// immediate re-runs of the same step agree); only re-running the
/// recorded step *after other processes have taken real steps* — the
/// linter's deferred replay — exposes it.
#[derive(Debug, Default)]
pub struct StateSmuggler {
    blackboard: Cell<u64>,
}

impl StateSmuggler {
    /// A fresh smuggler with an empty blackboard.
    pub fn new() -> Self {
        StateSmuggler::default()
    }
}

/// State of [`StateSmuggler`]: input and a round counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SmState {
    /// The input identifier.
    pub x: u64,
    /// Rounds performed.
    pub rounds: u64,
}

impl Algorithm for StateSmuggler {
    type Input = u64;
    type State = SmState;
    type Reg = u64;
    type Output = u64;

    fn init(&self, _id: ProcessId, x: u64) -> SmState {
        SmState { x, rounds: 0 }
    }

    fn publish(&self, s: &SmState) -> u64 {
        s.x
    }

    fn step(&self, s: &mut SmState, _view: &Neighborhood<'_, u64>) -> Step<u64> {
        s.rounds += 1;
        if s.rounds >= 3 {
            // Decision depends on who scribbled last — not on the view.
            Step::Return(self.blackboard.get() % 5)
        } else {
            self.blackboard.set(s.x);
            Step::Continue
        }
    }
}

/// Violates **decision stability**: a process that has returned would
/// return a *different* color if activated again.
///
/// The deciding step bases its output on a counter it just bumped, so
/// re-running the step from the post-decision state yields a different
/// output. `publish` exposes only the static input, so the register
/// never regresses and no other rule fires.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnstableDecider;

/// State of [`UnstableDecider`]: input and an activation counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UdState {
    /// The input identifier.
    pub x: u64,
    /// Activations seen so far.
    pub seen: u64,
}

impl Algorithm for UnstableDecider {
    type Input = u64;
    type State = UdState;
    type Reg = u64;
    type Output = u64;

    fn init(&self, _id: ProcessId, x: u64) -> UdState {
        UdState { x, seen: 0 }
    }

    fn publish(&self, s: &UdState) -> u64 {
        s.x
    }

    fn step(&self, s: &mut UdState, _view: &Neighborhood<'_, u64>) -> Step<u64> {
        s.seen += 1;
        if s.seen >= 2 {
            Step::Return(s.seen % 5) // unstable: depends on the bump
        } else {
            Step::Continue
        }
    }
}

/// Violates the **palette bound**: declared palette 5 (colors `0..=4`),
/// but emits `x mod 7`, i.e. colors up to 6.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutOfPalette;

/// State of [`OutOfPalette`]: just the input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpState {
    /// The input identifier.
    pub x: u64,
}

impl Algorithm for OutOfPalette {
    type Input = u64;
    type State = OpState;
    type Reg = u64;
    type Output = u64;

    fn init(&self, _id: ProcessId, x: u64) -> OpState {
        OpState { x }
    }

    fn publish(&self, s: &OpState) -> u64 {
        s.x
    }

    fn step(&self, s: &mut OpState, _view: &Neighborhood<'_, u64>) -> Step<u64> {
        Step::Return(s.x % 7)
    }
}

/// Violates **step determinism**: the update consults a private RNG in
/// the algorithm object, so two runs of the same step from the same
/// state and view diverge.
#[derive(Debug)]
pub struct NondetStepper {
    rng: Cell<u64>,
}

impl NondetStepper {
    /// A nondeterministic stepper with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        NondetStepper {
            rng: Cell::new(seed | 1),
        }
    }
}

/// State of [`NondetStepper`]: input and a round counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NdState {
    /// The input identifier.
    pub x: u64,
    /// Rounds performed.
    pub rounds: u64,
}

impl Algorithm for NondetStepper {
    type Input = u64;
    type State = NdState;
    type Reg = u64;
    type Output = u64;

    fn init(&self, _id: ProcessId, x: u64) -> NdState {
        NdState { x, rounds: 0 }
    }

    fn publish(&self, s: &NdState) -> u64 {
        s.x
    }

    fn step(&self, s: &mut NdState, _view: &Neighborhood<'_, u64>) -> Step<u64> {
        // xorshift64 advanced on every call: probe runs diverge.
        let mut z = self.rng.get();
        z ^= z << 13;
        z ^= z >> 7;
        z ^= z << 17;
        self.rng.set(z);
        s.rounds += z % 3;
        if s.rounds >= 4 {
            Step::Return(z % 5)
        } else {
            Step::Continue
        }
    }
}

/// Violates **solo wait-freedom**: waits until every neighbor's
/// register is awake, so a solo execution (neighbors forever `⊥`)
/// never returns, despite a declared solo round bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoloDiverger;

/// State of [`SoloDiverger`]: just the input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SdState {
    /// The input identifier.
    pub x: u64,
}

impl Algorithm for SoloDiverger {
    type Input = u64;
    type State = SdState;
    type Reg = u64;
    type Output = u64;

    fn init(&self, _id: ProcessId, x: u64) -> SdState {
        SdState { x }
    }

    fn publish(&self, s: &SdState) -> u64 {
        s.x
    }

    fn step(&self, s: &mut SdState, view: &Neighborhood<'_, u64>) -> Step<u64> {
        if view.all_awake() {
            Step::Return(s.x % 5)
        } else {
            Step::Continue // waiting on ⊥ neighbors: not wait-free
        }
    }
}

/// Violates **solo termination from reachable states** (`FTC-TERM-007`)
/// while staying invisible to every *dynamic* rule: it returns
/// immediately when no neighbor is awake — so the linter's solo runs
/// from initial states (`FTC-WF-006`) always decide in one step — but
/// from any state it *waits for awake neighbors to disappear*, which
/// under a frozen view (the crash scenario) never happens. Only the
/// static termination pass, which runs solo from every *reachable*
/// state, sees the lasso.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoloLoiterer;

/// State of [`SoloLoiterer`]: just the input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SlState {
    /// The input identifier.
    pub x: u64,
}

impl Algorithm for SoloLoiterer {
    type Input = u64;
    type State = SlState;
    type Reg = u64;
    type Output = u64;

    fn init(&self, _id: ProcessId, x: u64) -> SlState {
        SlState { x }
    }

    fn publish(&self, s: &SlState) -> u64 {
        s.x
    }

    fn step(&self, s: &mut SlState, view: &Neighborhood<'_, u64>) -> Step<u64> {
        if view.awake().next().is_none() {
            Step::Return(s.x % 5) // cold solo start: instant decision
        } else {
            Step::Continue // loiters while anyone's register is awake
        }
    }
}

/// Violates the **bounded-state discipline** (`FTC-DOM-008`): it bumps
/// an unbounded counter every round spent blocked on a color-conflicting
/// neighbor, and the counter leaks into the output — so no sound
/// saturation exists and any declared domain bound is breached. The
/// dynamic linter never sees it: with conflict-free identifiers the
/// counter stays at zero, solo runs return in one step, and no dynamic
/// rule watches state growth.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnboundedCounter;

/// State of [`UnboundedCounter`]: input plus the leaking counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UcState {
    /// The input identifier.
    pub x: u64,
    /// Rounds spent blocked — unbounded, and it leaks into the output.
    pub c: u64,
}

/// Lies to the **POR certification gate**: claims
/// [`PorCert::CommutingTerminating`] while smuggling a shared step
/// clock through the algorithm object, so activations of distinct
/// processes do *not* commute — each step folds the global clock value
/// it observed into the state, making outcomes depend on the order in
/// which the adversary interleaves steps across the whole instance
/// (adjacent or not).
///
/// Unlike the linter fixtures above, this mutant targets the model
/// checker's *dynamic POR probe* (`--por` refuses the algorithm with a
/// certificate-violation error before exploring anything), mirroring
/// the `relabel_view` certification story. It uses an [`AtomicU64`]
/// rather than a [`Cell`] because the probe also runs inside the
/// parallel checker, which requires `Sync`. It solo-terminates (two
/// rounds) so only the commutation half of the probe can catch it.
#[derive(Debug, Default)]
pub struct PorLiar {
    clock: AtomicU64,
}

impl PorLiar {
    /// A fresh liar with its clock at zero.
    pub fn new() -> Self {
        PorLiar::default()
    }
}

/// State of [`PorLiar`]: input, smuggled clock residue, round counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlState {
    /// The input identifier.
    pub x: u64,
    /// Accumulated global-clock observations — the illegal coupling.
    pub stamp: u64,
    /// Rounds performed.
    pub rounds: u64,
}

impl Algorithm for PorLiar {
    type Input = u64;
    type State = PlState;
    type Reg = u64;
    type Output = u64;

    fn init(&self, _id: ProcessId, x: u64) -> PlState {
        PlState {
            x,
            stamp: 0,
            rounds: 0,
        }
    }

    fn publish(&self, s: &PlState) -> u64 {
        s.x
    }

    fn step(&self, s: &mut PlState, _view: &Neighborhood<'_, u64>) -> Step<u64> {
        // The smuggled channel: every step anywhere advances the shared
        // clock, and the observed value leaks into this process's state.
        let t = self.clock.fetch_add(1, Ordering::SeqCst);
        s.stamp = s.stamp.wrapping_add(t);
        s.rounds += 1;
        if s.rounds >= 2 {
            Step::Return((s.x + s.stamp) % 5)
        } else {
            Step::Continue
        }
    }

    fn relabel_view(&self, _state: &mut PlState, _perm: &[usize]) -> bool {
        true
    }

    // The lie the probe must catch.
    fn por_certificate(&self) -> PorCert {
        PorCert::CommutingTerminating
    }
}

impl Algorithm for UnboundedCounter {
    type Input = u64;
    type State = UcState;
    type Reg = u64;
    type Output = u64;

    fn init(&self, _id: ProcessId, x: u64) -> UcState {
        UcState { x, c: 0 }
    }

    fn publish(&self, s: &UcState) -> u64 {
        s.x % 5
    }

    fn step(&self, s: &mut UcState, view: &Neighborhood<'_, u64>) -> Step<u64> {
        if view.awake().all(|&r| r != s.x % 5) {
            Step::Return(s.x % 5 + s.c / 1_000_000)
        } else {
            s.c += 1; // blocked on a conflict: count (without bound)
            Step::Continue
        }
    }
}
