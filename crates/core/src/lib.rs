//! # `ftcolor-core` — the paper's algorithms
//!
//! Implementations of every algorithm in *"Fault Tolerant Coloring of the
//! Asynchronous Cycle"* (Fraigniaud, Lambein-Monette, Rabie, PODC 2022),
//! as [`Algorithm`](ftcolor_model::Algorithm)s over the
//! [`ftcolor-model`](ftcolor_model) substrate:
//!
//! * [`alg1::SixColoring`] — the warm-up wait-free 6-coloring of the
//!   cycle (§3.1, Theorem 3.1), linear time;
//! * [`alg2::FiveColoring`] — the wait-free 5-coloring (§3.2,
//!   Theorem 3.11), linear time, optimal palette;
//! * [`alg3::FastFiveColoring`] — the headline result (§4, Theorem 4.4):
//!   wait-free 5-coloring in `O(log* n)` rounds, combining Algorithm 2
//!   with a Cole–Vishkin-style identifier reduction gated by a
//!   green-light synchronization counter;
//! * [`alg4::DeltaSquaredColoring`] — the Appendix A extension to general
//!   graphs with an `O(Δ²)` palette;
//! * [`cole_vishkin`] — the reduction function `f` of Eq. (6) with the
//!   Lemma 4.2/4.3 properties;
//! * [`sync_local::ColeVishkinThree`] — the classic *synchronous* LOCAL
//!   3-coloring baseline the paper measures itself against;
//! * [`renaming::RankRenaming`] — wait-free `(2n−1)`-renaming on the
//!   clique (the shared-memory algorithm that Algorithm 2 resembles);
//! * [`mis`] — candidate maximal-independent-set algorithms used to
//!   *exhibit* Property 2.1 (MIS is not wait-free solvable in this model);
//! * [`alg2_patched`] — a candidate repair for the reproduction finding
//!   (Algorithm 2's livelock), with its machine-checked evidence;
//! * [`decoupled_ring`] — wait-free 3-coloring in the DECOUPLED model of
//!   the closest related work, for the E11 model-separation experiment;
//! * [`mutants`] — intentionally-buggy algorithms (one per §2 contract)
//!   used as negative fixtures by the `ftcolor-analyze` contract linter;
//! * [`domains`] — certified abstract view domains over which the static
//!   certifier (`ftcolor certify`) proves the contracts exhaustively.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod alg1;
pub mod alg2;
pub mod alg2_patched;
pub mod alg3;
pub mod alg3_patched;
pub mod alg4;
pub mod cole_vishkin;
pub mod color;
pub mod decoupled_ring;
pub mod domains;
pub mod mis;
pub mod mutants;
pub mod renaming;
pub mod sync_local;

pub use alg1::SixColoring;
pub use alg2::FiveColoring;
pub use alg2_patched::FiveColoringPatched;
pub use alg3::FastFiveColoring;
pub use alg3_patched::FastFiveColoringPatched;
pub use alg4::DeltaSquaredColoring;
pub use color::{mex, mex2, PairColor};

/// Convenience re-exports of the paper's algorithms and color types.
pub mod prelude {
    pub use crate::alg1::SixColoring;
    pub use crate::alg2::FiveColoring;
    pub use crate::alg2_patched::FiveColoringPatched;
    pub use crate::alg3::FastFiveColoring;
    pub use crate::alg3_patched::FastFiveColoringPatched;
    pub use crate::alg4::DeltaSquaredColoring;
    pub use crate::cole_vishkin::reduce;
    pub use crate::color::PairColor;
    pub use crate::decoupled_ring::DecoupledThreeColoring;
    pub use crate::renaming::RankRenaming;
    pub use crate::sync_local::ColeVishkinThree;
}
