//! Seeded open-loop arrival process and workload generation.
//!
//! The service front end admits instances at a configured *rate*
//! (arrivals per sweep round), open-loop: arrivals do not wait for
//! completions, so the in-flight population is whatever the rate and
//! the completion latency make it. Both halves are pure functions of
//! their seeds:
//!
//! * [`ArrivalPlan`] — how many instances arrive at each round. Same
//!   `(seed, rate, total)` ⇒ identical plan, which is what the
//!   admission-determinism property test pins.
//! * [`WorkloadGen`] — the instance stream: ring identifiers drawn
//!   without replacement from a bounded universe, a per-instance
//!   schedule seed, and optional crash-plan noise.
//!
//! The identifier universe is deliberately small by default: the packed
//! encoding pays off exactly when instances *share* state values, and a
//! bounded label space is what makes the interners saturate instead of
//! growing with the fleet.

use crate::spec::{InstanceSpec, ScheduleKind};
use ftcolor_model::{ProcessId, Time};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-round admission counts for one service run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalPlan {
    counts: Vec<u64>,
}

impl ArrivalPlan {
    /// Generates the admission schedule: `total` arrivals at `rate` per
    /// round. The integer part of the rate arrives deterministically;
    /// the fractional part is a seeded per-round Bernoulli coin, so the
    /// long-run rate is exact in expectation and the whole plan is a
    /// pure function of `(seed, rate, total)`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive (the plan would never
    /// finish scheduling).
    pub fn generate(seed: u64, rate: f64, total: u64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa111_4a1b_0f2e_c3d4);
        let base = rate.floor() as u64;
        let frac = rate - rate.floor();
        let mut counts = Vec::new();
        let mut scheduled = 0u64;
        while scheduled < total {
            let k = (base + u64::from(rng.gen_bool(frac))).min(total - scheduled);
            counts.push(k);
            scheduled += k;
        }
        ArrivalPlan { counts }
    }

    /// Arrivals at sweep round `round` (0-based; 0 past the plan's end).
    pub fn arrivals(&self, round: u64) -> u64 {
        usize::try_from(round)
            .ok()
            .and_then(|r| self.counts.get(r).copied())
            .unwrap_or(0)
    }

    /// Number of rounds with scheduled arrivals.
    pub fn rounds(&self) -> usize {
        self.counts.len()
    }

    /// Total arrivals scheduled.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The raw per-round counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Workload knobs for [`WorkloadGen`].
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Ring size of every generated instance.
    pub n: usize,
    /// Identifiers are drawn without replacement from `0..universe`.
    pub universe: u64,
    /// `true` ⇒ lock-step instances; `false` ⇒ seeded random subsets.
    pub sync: bool,
    /// Inclusion probability for random-subset instances.
    pub p: f64,
    /// Probability that an instance carries one crash (fault-plan
    /// noise: a uniform victim at a uniform small crash time).
    pub crash_prob: f64,
    /// Latest crash time the noise draws (crash times are `1..=this`).
    pub crash_horizon: Time,
    /// Fuel bound of every generated instance.
    pub fuel: u64,
}

/// Seeded stream of [`InstanceSpec`]s. Same seed + spec ⇒ same stream.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    rng: StdRng,
    spec: WorkloadSpec,
}

impl WorkloadGen {
    /// A generator for the given workload shape.
    ///
    /// # Panics
    ///
    /// Panics if the identifier universe cannot hold `n` distinct ids.
    pub fn new(seed: u64, spec: WorkloadSpec) -> Self {
        assert!(
            spec.universe >= spec.n as u64,
            "identifier universe smaller than the ring"
        );
        WorkloadGen {
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_5eed_5eed_5eed),
            spec,
        }
    }

    /// The next instance in the stream.
    pub fn next_spec(&mut self) -> InstanceSpec {
        let s = &self.spec;
        let mut ids: Vec<u64> = Vec::with_capacity(s.n);
        while ids.len() < s.n {
            let candidate = self.rng.gen_range(0..s.universe);
            if !ids.contains(&candidate) {
                ids.push(candidate);
            }
        }
        let sched = if s.sync {
            ScheduleKind::Synchronous
        } else {
            ScheduleKind::Random {
                seed: self.rng.next_u64(),
                p: s.p,
            }
        };
        let crashes = if s.crash_prob > 0.0 && self.rng.gen_bool(s.crash_prob) {
            let victim = ProcessId(self.rng.gen_range(0..s.n));
            let at = self.rng.gen_range(1..=s.crash_horizon.max(1));
            vec![(victim, at)]
        } else {
            Vec::new()
        };
        InstanceSpec {
            ids,
            sched,
            crashes,
            fuel: s.fuel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            n: 5,
            universe: 64,
            sync: false,
            p: 0.5,
            crash_prob: 0.3,
            crash_horizon: 8,
            fuel: 1000,
        }
    }

    #[test]
    fn arrival_plan_is_deterministic_and_exact() {
        let a = ArrivalPlan::generate(9, 2.5, 1000);
        let b = ArrivalPlan::generate(9, 2.5, 1000);
        assert_eq!(a, b);
        assert_eq!(a.total(), 1000);
        // Rate 2.5 ⇒ 2 or 3 arrivals per round: 334..=500 rounds, and
        // the seeded coin keeps it near 1000 / 2.5 = 400.
        assert!((334..=500).contains(&a.rounds()), "rounds={}", a.rounds());
    }

    #[test]
    fn burst_rate_admits_everything_at_once() {
        let plan = ArrivalPlan::generate(1, 1e12, 1_000_000);
        assert_eq!(plan.rounds(), 1);
        assert_eq!(plan.arrivals(0), 1_000_000);
        assert_eq!(plan.arrivals(1), 0);
    }

    #[test]
    fn workload_ids_are_distinct_and_stream_reproducible() {
        let mut a = WorkloadGen::new(7, spec());
        let mut b = WorkloadGen::new(7, spec());
        for _ in 0..200 {
            let sa = a.next_spec();
            assert_eq!(sa, b.next_spec());
            let mut ids = sa.ids.clone();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "ids must be distinct");
            assert!(sa.crashes.len() <= 1);
        }
    }
}
