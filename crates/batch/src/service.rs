//! The service front end: a seeded open-loop workload driven through a
//! [`BatchEngine`], summarized for machines.
//!
//! [`run_service`] wires the pieces together: an [`ArrivalPlan`] decides
//! how many instances arrive before each sweep round, a [`WorkloadGen`]
//! decides what they are, the engine sweeps, and a completion sink folds
//! every outcome into a [`ServiceSummary`]. The summary carries **only
//! deterministic fields** — everything in it is a pure function of the
//! configuration, identical at every `--jobs` value (the golden test
//! pins this byte-for-byte). Wall-clock measurements (throughput,
//! latency in seconds, peak RSS) live in the separate [`ServiceTimings`]
//! so they can be printed to stderr / bench snapshots without
//! contaminating the reproducible half.
//!
//! Two execution paths, one summary shape:
//!
//! * `instances > 1` — the batched path: every instance lives as packed
//!   slab rows in one [`BatchEngine`], sharing interned values.
//! * `instances == 1` — the materialized path
//!   ([`crate::engine::run_materialized`]): a single giant ring (the
//!   `n = 10M` Algorithm 3 regime) runs on a live `Execution` with
//!   a seeded permutation of `0..n` as identifiers, since one instance
//!   has nobody to share interned values with.
//!
//! Aggregation is order-independent by construction — counters,
//! histograms, min/max, and a commutative digest — because the sink
//! runs on whichever worker retires an instance, in no fixed order.

use crate::arrival::{ArrivalPlan, WorkloadGen, WorkloadSpec};
use crate::engine::{run_materialized, BatchConfig, BatchEngine, BatchOutcome, Termination};
use crate::spec::InstanceSpec;
use ftcolor_model::{Algorithm, Time};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::hash::Hash;
use std::time::Instant;

/// Everything a service run needs to know. All fields feed the seeded
/// generators, so two runs with equal configs produce equal summaries.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Ring size of every instance.
    pub n: usize,
    /// Total instances to admit over the run.
    pub instances: u64,
    /// Open-loop arrival rate, instances per sweep round.
    pub rate: f64,
    /// Master seed (arrivals, workload, and per-instance schedules all
    /// derive from it).
    pub seed: u64,
    /// `true` ⇒ synchronous instances; `false` ⇒ seeded random subsets.
    pub sync: bool,
    /// Inclusion probability for random-subset schedules.
    pub p: f64,
    /// Probability an instance carries one crash (fault-plan noise).
    pub crash_prob: f64,
    /// Latest crash time the noise draws.
    pub crash_horizon: Time,
    /// Identifier universe (`ids` drawn distinct from `0..universe`).
    pub universe: u64,
    /// Per-instance fuel bound.
    pub fuel: u64,
    /// Schedule iterations per instance per sweep round.
    pub quantum: u32,
    /// Worker threads (`0` = one per CPU). Affects wall-clock only.
    pub jobs: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            n: 5,
            instances: 1000,
            rate: 64.0,
            seed: 1,
            sync: false,
            p: 0.5,
            crash_prob: 0.0,
            crash_horizon: 8,
            universe: 64,
            fuel: 100_000,
            quantum: 8,
            jobs: 1,
        }
    }
}

/// The deterministic half of a service run's result. Every field is a
/// pure function of the [`ServiceConfig`] — byte-identical JSON at any
/// thread count — which is why wall-clock numbers are banished to
/// [`ServiceTimings`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSummary {
    /// Summary format tag (`ftcolor-service/1`).
    pub schema: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Ring size.
    pub n: usize,
    /// Instances requested.
    pub instances: u64,
    /// Arrival rate echo (stringified so float formatting cannot vary).
    pub rate: String,
    /// Master seed echo.
    pub seed: u64,
    /// Schedule description (`sync` or `random(p=…)`).
    pub sched: String,
    /// Crash-noise probability echo (stringified).
    pub crash_prob: String,
    /// Per-instance fuel echo.
    pub fuel: u64,
    /// Sweep quantum echo.
    pub quantum: u32,
    /// Instances that finished (any termination).
    pub completed: u64,
    /// … of which fully returned,
    pub returned: u64,
    /// … crashed out by their schedule,
    pub crashed: u64,
    /// … or stalled (fuel exhausted — a bug for these wait-free
    /// algorithms under fair schedules).
    pub stalled: u64,
    /// All adjacent returned processes got distinct colors.
    pub proper_ok: bool,
    /// All returned colors fit the algorithm's palette.
    pub palette_ok: bool,
    /// The run verdict: everything completed, nothing stalled, proper,
    /// in palette.
    pub valid: bool,
    /// Returned-color counts, indexed by palette color.
    pub color_histogram: Vec<u64>,
    /// Sweep rounds executed.
    pub rounds: u64,
    /// Median completion latency in sweep rounds.
    pub latency_p50: u64,
    /// 99th-percentile completion latency in sweep rounds.
    pub latency_p99: u64,
    /// Worst completion latency in sweep rounds.
    pub latency_max: u64,
    /// Time steps executed across all instances.
    pub total_steps: u64,
    /// Process activations across all instances.
    pub total_activations: u64,
    /// Largest single-process activation count observed.
    pub max_activations: u64,
    /// Commutative digest over all outcomes (hex) — order-independent,
    /// so equal digests at different `--jobs` mean equal outcome sets.
    pub outputs_digest: String,
    /// Distinct interned states (0 on the materialized path).
    pub interned_states: usize,
    /// Distinct interned register values.
    pub interned_regs: usize,
    /// Distinct interned outputs.
    pub interned_outputs: usize,
}

/// The wall-clock half: honest machine-dependent numbers, reported out
/// of band (stderr, bench snapshots) so the summary stays reproducible.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceTimings {
    /// Worker threads actually used.
    pub jobs: usize,
    /// End-to-end wall-clock of the run in milliseconds.
    pub elapsed_ms: u64,
    /// Completed colorings per second (integer; 0 if nothing completed).
    pub colorings_per_sec: u64,
    /// Peak resident set size in KiB (`VmHWM`; 0 where unavailable).
    pub peak_rss_kib: u64,
}

/// Order-independent outcome aggregation (the sink folds into this
/// under a mutex, from whichever worker retires each instance).
struct Acc {
    latencies: Vec<u64>,
    histogram: Vec<u64>,
    returned: u64,
    crashed: u64,
    stalled: u64,
    proper_ok: bool,
    palette_ok: bool,
    total_steps: u64,
    total_activations: u64,
    max_activations: u64,
    digest_add: u64,
    digest_xor: u64,
}

impl Acc {
    fn new(palette: usize) -> Self {
        Acc {
            latencies: Vec::new(),
            histogram: vec![0; palette],
            returned: 0,
            crashed: 0,
            stalled: 0,
            proper_ok: true,
            palette_ok: true,
            total_steps: 0,
            total_activations: 0,
            max_activations: 0,
            digest_add: 0,
            digest_xor: 0,
        }
    }

    fn fold<O>(&mut self, outcome: &BatchOutcome<O>, color_of: &impl Fn(&O) -> usize) {
        match outcome.termination {
            Termination::Returned => self.returned += 1,
            Termination::Crashed => self.crashed += 1,
            Termination::Stalled => self.stalled += 1,
        }
        self.latencies
            .push(outcome.completed_round - outcome.admitted_round);
        self.total_steps += outcome.time_steps;

        let mut h = fnv(0xcbf2_9ce4_8422_2325, outcome.index as u64);
        h = fnv(h, outcome.termination as u64);
        h = fnv(h, outcome.time_steps);
        let n = outcome.outputs.len();
        for (i, out) in outcome.outputs.iter().enumerate() {
            let color = out.as_ref().map(&color_of);
            if let Some(c) = color {
                if c < self.histogram.len() {
                    self.histogram[c] += 1;
                } else {
                    self.palette_ok = false;
                }
            }
            // Properness among the *returned*: a crashed neighbor
            // constrains nobody (the wait-free guarantee is exactly
            // that survivors stay properly colored). Edges (i, i+1 mod
            // n) cover the whole ring exactly once since n >= 3.
            let next = outcome.outputs[(i + 1) % n].as_ref().map(&color_of);
            if let (Some(a), Some(b)) = (color, next) {
                if a == b {
                    self.proper_ok = false;
                }
            }
            h = fnv(h, color.map_or(0, |c| c as u64 + 1));
        }
        for &a in &outcome.activations {
            self.total_activations += a;
            self.max_activations = self.max_activations.max(a);
            h = fnv(h, a);
        }
        self.digest_add = self.digest_add.wrapping_add(h);
        self.digest_xor ^= h;
    }
}

/// One FNV-1a round over a `u64` word.
fn fnv(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `q`-th percentile (0–100) of an unsorted latency sample by
/// nearest-rank on the sorted copy. Deterministic integer arithmetic.
fn percentile(sorted: &[u64], q: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as u64 * q) / 100;
    sorted[usize::try_from(idx).expect("index fits usize")]
}

/// Runs one service workload to completion and summarizes it.
///
/// `algorithm` is the label echoed into the summary; `color_of` maps
/// the algorithm's output type onto `0..palette` (the histogram index
/// and properness domain).
///
/// # Panics
///
/// Panics if the configuration is internally inconsistent (ring smaller
/// than 3, identifier universe smaller than the ring, non-positive
/// rate) — the CLI validates before calling.
pub fn run_service<A>(
    alg: &A,
    algorithm: &str,
    palette: usize,
    color_of: impl Fn(&A::Output) -> usize + Sync,
    cfg: &ServiceConfig,
) -> (ServiceSummary, ServiceTimings)
where
    A: Algorithm<Input = u64> + Sync,
    A::State: Eq + Hash + Clone + Send + Sync,
    A::Reg: Eq + Hash + Clone + Send + Sync,
    A::Output: Eq + Hash + Clone + Send + Sync,
{
    let start = Instant::now();
    let mut acc = Acc::new(palette);
    let (rounds, jobs, interned) = if cfg.instances == 1 {
        // Materialized path: a single (typically giant) ring on a live
        // Execution. Identifiers are a seeded permutation of 0..n —
        // identity order would hand Cole–Vishkin a degenerate
        // staircase, and the point of this path is the honest
        // O(log* n) regime.
        let mut ids: Vec<u64> = (0..cfg.n as u64).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        let spec = if cfg.sync {
            InstanceSpec::synchronous(ids, cfg.fuel)
        } else {
            InstanceSpec::random(ids, cfg.seed, cfg.p, cfg.fuel)
        };
        let outcome = run_materialized(alg, &spec, cfg.quantum, false);
        let rounds = outcome.completed_round;
        acc.fold(&outcome, &color_of);
        (rounds, 1, (0, 0, 0))
    } else {
        let plan = ArrivalPlan::generate(cfg.seed, cfg.rate, cfg.instances);
        let mut gen = WorkloadGen::new(
            cfg.seed,
            WorkloadSpec {
                n: cfg.n,
                universe: cfg.universe,
                sync: cfg.sync,
                p: cfg.p,
                crash_prob: cfg.crash_prob,
                crash_horizon: cfg.crash_horizon,
                fuel: cfg.fuel,
            },
        );
        let mut engine = BatchEngine::new(
            alg,
            cfg.n,
            BatchConfig {
                jobs: cfg.jobs,
                quantum: cfg.quantum,
                record_traces: false,
            },
        );
        let shared = Mutex::new(acc);
        let sink = |outcome: BatchOutcome<A::Output>| {
            shared.lock().fold(&outcome, &color_of);
        };
        // Any instance admitted at round R is done by R + ceil(fuel /
        // quantum) + 1 visits, so this cap only fires on engine bugs.
        let max_rounds = plan.rounds() as u64 + cfg.fuel / u64::from(cfg.quantum.max(1)) + 16;
        let mut admitted: u64 = 0;
        while (admitted < cfg.instances || engine.in_flight() > 0) && engine.rounds() < max_rounds {
            for _ in 0..plan.arrivals(engine.rounds()) {
                engine.admit(&gen.next_spec());
                admitted += 1;
            }
            engine.run_round(&sink);
        }
        let rounds = engine.rounds();
        let jobs = cfg.jobs.max(1);
        let interned = engine.interned_counts();
        acc = shared.into_inner();
        (rounds, jobs, interned)
    };

    let completed = acc.returned + acc.crashed + acc.stalled;
    acc.latencies.sort_unstable();
    let valid = completed == cfg.instances && acc.stalled == 0 && acc.proper_ok && acc.palette_ok;
    let summary = ServiceSummary {
        schema: "ftcolor-service/1".to_string(),
        algorithm: algorithm.to_string(),
        n: cfg.n,
        instances: cfg.instances,
        rate: format!("{}", cfg.rate),
        seed: cfg.seed,
        sched: if cfg.sync {
            "sync".to_string()
        } else {
            format!("random(p={})", cfg.p)
        },
        crash_prob: format!("{}", cfg.crash_prob),
        fuel: cfg.fuel,
        quantum: cfg.quantum,
        completed,
        returned: acc.returned,
        crashed: acc.crashed,
        stalled: acc.stalled,
        proper_ok: acc.proper_ok,
        palette_ok: acc.palette_ok,
        valid,
        color_histogram: acc.histogram,
        rounds,
        latency_p50: percentile(&acc.latencies, 50),
        latency_p99: percentile(&acc.latencies, 99),
        latency_max: acc.latencies.last().copied().unwrap_or(0),
        total_steps: acc.total_steps,
        total_activations: acc.total_activations,
        max_activations: acc.max_activations,
        outputs_digest: format!("{:016x}{:016x}", acc.digest_add, acc.digest_xor),
        interned_states: interned.0,
        interned_regs: interned.1,
        interned_outputs: interned.2,
    };
    let elapsed_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    let timings = ServiceTimings {
        jobs,
        elapsed_ms,
        colorings_per_sec: completed
            .saturating_mul(1000)
            .checked_div(elapsed_ms.max(1))
            .unwrap_or(0),
        peak_rss_kib: peak_rss_kib(),
    };
    (summary, timings)
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`), or 0 where the file or field is unavailable.
pub fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}
