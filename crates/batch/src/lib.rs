//! # `ftcolor-batch` — millions of concurrent ring instances
//!
//! The sequential [`Execution`](ftcolor_model::Execution) is one ring,
//! materialized: per-process states, registers, and outputs as live
//! Rust values. That is the right tool for *studying* an execution and
//! hopeless for *fleets* — a service colorings workload wants millions
//! of small `C_n` instances in flight at once, and millions of
//! `Vec`-of-`enum` executions are mostly pointer overhead for values
//! drawn from a tiny shared set.
//!
//! This crate runs fleets in **struct-of-arrays** form instead:
//!
//! * [`engine`] — the [`BatchEngine`]: each
//!   instance at rest is `3n` packed `u32` slots (the model-checker's
//!   interned [`ConfigCodec`](ftcolor_model::encode::ConfigCodec)
//!   encoding, lifted out of the checker and into the execution hot
//!   path) plus flat activation/time counters. Sweeps visit every
//!   in-flight instance through per-worker scratch executions,
//!   partitioned with the checker's claim/steal
//!   [`RangeQueue`](ftcolor_model::sweep::RangeQueue)s. Outcomes are
//!   bit-identical to `Execution::run` at every thread count — the
//!   visit loop *is* `Execution::run`'s loop, quantum iterations at a
//!   time. [`engine::run_materialized`] covers the opposite regime: one
//!   giant ring (`n = 10M`) that shares nothing and should just run on
//!   a live `Execution`.
//! * [`spec`] — [`InstanceSpec`], the single
//!   schedule factory both the engine and the sequential oracle build
//!   from (bit-identity as a construction property), plus
//!   [`run_sequential`](spec::InstanceSpec::run_sequential), the oracle
//!   the differential suite pins the engine against.
//! * [`arrival`] — the seeded open-loop arrival process
//!   ([`ArrivalPlan`]) and workload stream
//!   ([`WorkloadGen`]); pure functions of their
//!   seeds.
//! * [`service`] — [`run_service`]: arrivals +
//!   engine + order-independent aggregation, split into a deterministic
//!   [`ServiceSummary`] (stdout JSON, golden-
//!   and jobs-invariant) and wall-clock
//!   [`ServiceTimings`] (stderr / bench
//!   snapshots only).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arrival;
pub mod engine;
pub mod service;
pub mod spec;

pub use arrival::{ArrivalPlan, WorkloadGen, WorkloadSpec};
pub use engine::{run_materialized, BatchConfig, BatchEngine, BatchOutcome, Termination};
pub use service::{run_service, ServiceConfig, ServiceSummary, ServiceTimings};
pub use spec::{BatchSchedule, InstanceSpec, ScheduleKind};
