//! The struct-of-arrays batch engine.
//!
//! One [`BatchEngine`] holds a homogeneous fleet of `C_n` instances.
//! An instance at rest is three flat slab rows — `3n` packed interned
//! slots ([`ConfigCodec`]), `n` activation counters, and one time
//! counter — plus a tiny control block (its live schedule struct, fuel,
//! crash record). Stepping swaps the row through a per-worker scratch
//! [`Execution`]: restore ([`ConfigCodec::restore_slice`]), up to
//! `quantum` schedule iterations, re-encode
//! ([`ConfigCodec::encode_slice`]). No `Execution` is ever cloned and
//! no per-instance heap state survives between visits; a parked C5
//! instance costs 60 bytes of slab plus its control block, which is
//! what makes millions of concurrent instances fit.
//!
//! ## Equivalence to the sequential executor
//!
//! The visit loop replays [`Execution::run`]'s loop *exactly*: check
//! the working set, check fuel, call `Schedule::next(time + 1,
//! working)`, crash on `None` (snapshotting the working set), step on
//! `Some`. The schedule structs are the real model types (stored per
//! instance), the step is the real [`Execution::step_with`], and the
//! time/activation counters are maintained to the same definitions —
//! so outcomes are bit-identical to `Execution::run` by construction,
//! which `tests/batch_equivalence.rs` pins per algorithm, instance,
//! fault pattern, and thread count.
//!
//! ## Sweeps, rounds, and determinism
//!
//! [`BatchEngine::run_round`] visits every in-flight instance exactly
//! once, partitioned across workers with the checker's claim/steal
//! [`sweep::RangeQueue`]s. Instances never share
//! mutable state, so the thread count affects wall-clock only: every
//! per-instance outcome, every completion round (= latency), and every
//! aggregate over them is identical at `jobs = 1` and `jobs = 64`.
//! Interner *index assignment* does depend on visit interleaving — but
//! indices never leave the engine; only decoded values do.
//!
//! ## When not to batch
//!
//! A single giant ring shares no values with anyone; interning its
//! millions of distinct per-identifier states would cost memory and
//! buy nothing. [`run_materialized`] runs such instances on a live
//! `Execution` instead — same spec, same schedule construction, same
//! outcome shape (and trivially oracle-identical, because it *is* the
//! oracle).

use crate::spec::{BatchSchedule, InstanceSpec};
use ftcolor_model::encode::{ConfigCodec, SLOTS_PER_PROC};
use ftcolor_model::schedule::ActivationSet;
use ftcolor_model::sweep;
use ftcolor_model::{
    Algorithm, Execution, ExecutionReport, ModelError, ProcessId, Schedule, Time, Topology,
};
use parking_lot::Mutex;
use std::hash::Hash;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// How one instance ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Every process returned an output.
    Returned,
    /// The schedule ended; the processes still working crashed. The
    /// survivors' outputs stand (this is the wait-free guarantee).
    Crashed,
    /// Fuel ran out with processes still working — the batch rendering
    /// of [`ModelError::NonTermination`].
    Stalled,
}

/// Slab status byte. `InFlight` is engine-internal; the other values
/// mirror [`Termination`].
const ST_IN_FLIGHT: u8 = 0;
const ST_RETURNED: u8 = 1;
const ST_CRASHED: u8 = 2;
const ST_STALLED: u8 = 3;

impl Termination {
    fn as_status(self) -> u8 {
        match self {
            Termination::Returned => ST_RETURNED,
            Termination::Crashed => ST_CRASHED,
            Termination::Stalled => ST_STALLED,
        }
    }
}

/// Everything known about one finished instance, delivered to the
/// completion sink from whichever worker retired it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome<O> {
    /// Admission index of the instance within its engine.
    pub index: usize,
    /// How the instance ended.
    pub termination: Termination,
    /// Output of each process (`None` = crashed before returning).
    pub outputs: Vec<Option<O>>,
    /// Activation count of each process.
    pub activations: Vec<u64>,
    /// Time steps executed.
    pub time_steps: Time,
    /// Processes crashed by the schedule ending (empty unless
    /// [`Termination::Crashed`]).
    pub crashed: Vec<ProcessId>,
    /// Sweep round at which the instance was admitted.
    pub admitted_round: u64,
    /// Sweep round at which it finished; `completed_round -
    /// admitted_round` is the completion latency in rounds.
    pub completed_round: u64,
    /// Per-step resolved activation sets (only when trace recording is
    /// on — the crash-composition property test reads these).
    pub trace: Option<Vec<ActivationSet>>,
}

impl<O: Clone> BatchOutcome<O> {
    /// This outcome as the sequential executor's report type (what
    /// `Execution::run` returns on its `Ok` path) — the object the
    /// differential suite compares bit-for-bit.
    pub fn report(&self) -> ExecutionReport<O> {
        ExecutionReport {
            outputs: self.outputs.clone(),
            activations: self.activations.clone(),
            time_steps: self.time_steps,
            crashed: self.crashed.clone(),
        }
    }
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Worker threads per sweep (`0` = one per CPU).
    pub jobs: usize,
    /// Schedule iterations per instance per round (`≥ 1`). Latency is
    /// measured in rounds, so the quantum is the latency resolution.
    pub quantum: u32,
    /// Record per-step activation traces into every outcome (tests
    /// only — costs an allocation per step).
    pub record_traces: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            jobs: 1,
            quantum: 8,
            record_traces: false,
        }
    }
}

/// Per-instance control block: the live schedule plus everything that
/// does not pack into flat `u32` slabs. Locked only by the (single)
/// worker visiting the instance this round.
struct Ctrl {
    sched: BatchSchedule,
    fuel: u64,
    crashed: Vec<ProcessId>,
    trace: Option<Vec<ActivationSet>>,
}

/// A homogeneous batch of `C_n` instances of one algorithm. See the
/// module docs for the execution model.
pub struct BatchEngine<'a, A: Algorithm<Input = u64>>
where
    A::State: Eq + Hash,
    A::Reg: Eq + Hash,
    A::Output: Eq + Hash,
{
    alg: &'a A,
    topo: Topology,
    codec: ConfigCodec<A>,
    n: usize,
    cfg: BatchConfig,
    round: u64,
    /// Packed configuration slab: `3n` interned slots per instance.
    packed: Vec<AtomicU32>,
    /// Activation-counter slab: `n` counters per instance.
    activ: Vec<AtomicU32>,
    /// Time steps executed, per instance.
    time: Vec<AtomicU64>,
    /// `ST_*` status byte, per instance.
    status: Vec<AtomicU8>,
    /// Admission round, per instance (written once, before any sweep).
    admitted: Vec<u64>,
    /// Control blocks, per instance.
    ctrl: Vec<Mutex<Ctrl>>,
    /// Indices still in flight (pruned after every round).
    runnable: Vec<u32>,
}

impl<'a, A> BatchEngine<'a, A>
where
    A: Algorithm<Input = u64> + Sync,
    A::State: Eq + Hash + Clone + Send + Sync,
    A::Reg: Eq + Hash + Clone + Send + Sync,
    A::Output: Eq + Hash + Clone + Send + Sync,
{
    /// An empty engine for `C_n` instances.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (no such cycle).
    pub fn new(alg: &'a A, n: usize, cfg: BatchConfig) -> Self {
        let topo = Topology::cycle(n).expect("batch engine needs a ring of size >= 3");
        BatchEngine {
            alg,
            topo,
            codec: ConfigCodec::new(n),
            n,
            cfg: BatchConfig {
                jobs: if cfg.jobs == 0 {
                    sweep::default_jobs()
                } else {
                    cfg.jobs
                },
                quantum: cfg.quantum.max(1),
                record_traces: cfg.record_traces,
            },
            round: 0,
            packed: Vec::new(),
            activ: Vec::new(),
            time: Vec::new(),
            status: Vec::new(),
            admitted: Vec::new(),
            ctrl: Vec::new(),
            runnable: Vec::new(),
        }
    }

    /// Ring size of every instance in this engine.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sweep rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Instances currently in flight.
    pub fn in_flight(&self) -> usize {
        self.runnable.len()
    }

    /// Instances admitted over the engine's lifetime.
    pub fn admitted(&self) -> usize {
        self.status.len()
    }

    /// Distinct interned (states, registers, outputs) — the sharing the
    /// packed representation lives off.
    pub fn interned_counts(&self) -> (usize, usize, usize) {
        self.codec.interned_counts()
    }

    /// Rough heap footprint of the interners.
    pub fn approx_interner_bytes(&self) -> usize {
        self.codec.approx_interner_bytes()
    }

    /// Admits one instance, returning its index. The instance is
    /// initialized exactly as `Execution::new` would (it is — a scratch
    /// execution is built once and immediately parked into the slab).
    ///
    /// # Panics
    ///
    /// Panics if the spec's ring size differs from the engine's.
    pub fn admit(&mut self, spec: &InstanceSpec) -> usize {
        assert_eq!(spec.n(), self.n, "spec ring size != engine ring size");
        let idx = self.status.len();
        let exec = Execution::new(self.alg, &self.topo, spec.ids.clone());
        let mut row = vec![0u32; self.n * SLOTS_PER_PROC];
        self.codec.encode_slice(&exec, &mut row);
        self.packed.extend(row.into_iter().map(AtomicU32::new));
        self.activ
            .extend(std::iter::repeat_with(|| AtomicU32::new(0)).take(self.n));
        self.time.push(AtomicU64::new(0));
        self.status.push(AtomicU8::new(ST_IN_FLIGHT));
        self.admitted.push(self.round);
        self.ctrl.push(Mutex::new(Ctrl {
            sched: spec.schedule(),
            fuel: spec.fuel,
            crashed: Vec::new(),
            trace: self.cfg.record_traces.then(Vec::new),
        }));
        self.runnable
            .push(u32::try_from(idx).expect("fewer than 2^32 instances"));
        idx
    }

    /// One sweep round: every in-flight instance is visited exactly
    /// once (up to `quantum` schedule iterations each) by `jobs`
    /// workers. Finished instances are delivered to `sink` from the
    /// retiring worker's thread — the sink must aggregate
    /// order-independently (sinks run concurrently, in no fixed order).
    /// Returns the number of instances retired this round.
    pub fn run_round(&mut self, sink: &(impl Fn(BatchOutcome<A::Output>) + Sync)) -> usize {
        self.round += 1;
        let before = self.runnable.len();
        if before == 0 {
            return 0;
        }
        let workers = self.cfg.jobs.min(before).max(1);
        let queues = sweep::partition(before, workers);
        let this: &Self = self;
        let round = self.round;
        crossbeam::thread::scope(|s| {
            for w in 0..workers {
                let queues = &queues;
                s.spawn(move |_| {
                    let mut scratch = Execution::new(this.alg, &this.topo, vec![0u64; this.n]);
                    let mut row = vec![0u32; this.n * SLOTS_PER_PROC];
                    let mut act_row = vec![0u32; this.n];
                    let visit_all = |range: std::ops::Range<usize>,
                                     scratch: &mut Execution<'_, A>,
                                     row: &mut [u32],
                                     act_row: &mut [u32]| {
                        for i in range {
                            this.visit(
                                this.runnable[i] as usize,
                                round,
                                scratch,
                                row,
                                act_row,
                                sink,
                            );
                        }
                    };
                    loop {
                        if let Some(range) = queues[w].claim(CLAIM_CHUNK) {
                            visit_all(range, &mut scratch, &mut row, &mut act_row);
                            continue;
                        }
                        let victim = (0..workers)
                            .filter(|&v| v != w)
                            .max_by_key(|&v| queues[v].remaining());
                        match victim.and_then(|v| queues[v].steal()) {
                            Some(range) => visit_all(range, &mut scratch, &mut row, &mut act_row),
                            None => break,
                        }
                    }
                });
            }
        })
        .expect("batch worker panicked");
        self.runnable
            .retain(|&i| this_status(&self.status, i as usize) == ST_IN_FLIGHT);
        before - self.runnable.len()
    }

    /// Sweeps until the fleet drains or `max_rounds` elapse. Returns
    /// `true` if everything finished.
    pub fn run_to_completion(
        &mut self,
        max_rounds: u64,
        sink: &(impl Fn(BatchOutcome<A::Output>) + Sync),
    ) -> bool {
        while !self.runnable.is_empty() && self.round < max_rounds {
            self.run_round(sink);
        }
        self.runnable.is_empty()
    }

    /// Visits one instance: restore its slab row, run up to `quantum`
    /// schedule iterations of `Execution::run`'s exact loop, park or
    /// retire.
    fn visit(
        &self,
        idx: usize,
        round: u64,
        scratch: &mut Execution<'_, A>,
        row: &mut [u32],
        act_row: &mut [u32],
        sink: &impl Fn(BatchOutcome<A::Output>),
    ) {
        let slots = self.n * SLOTS_PER_PROC;
        let base = idx * slots;
        let abase = idx * self.n;
        let mut ctrl = self.ctrl[idx].lock();

        for (k, r) in row.iter_mut().enumerate() {
            *r = self.packed[base + k].load(Ordering::Relaxed);
        }
        self.codec.restore_slice(scratch, row);
        for (k, a) in act_row.iter_mut().enumerate() {
            *a = self.activ[abase + k].load(Ordering::Relaxed);
        }
        let mut time = self.time[idx].load(Ordering::Relaxed);

        // `Execution::run`, quantum iterations at a time: working-set
        // check first, then fuel, then the schedule. The order matters
        // for the fuel-boundary cases and is pinned by the differential
        // suite.
        let mut done: Option<Termination> = None;
        for _ in 0..self.cfg.quantum {
            if scratch.working().is_empty() {
                done = Some(Termination::Returned);
                break;
            }
            if time >= ctrl.fuel {
                done = Some(Termination::Stalled);
                break;
            }
            match ctrl.sched.next(time + 1, scratch.working()) {
                None => {
                    ctrl.crashed = scratch.working().to_vec();
                    done = Some(Termination::Crashed);
                    break;
                }
                Some(set) => {
                    let active = scratch.step_with(&set);
                    for &p in &active {
                        act_row[p.index()] += 1;
                    }
                    if let Some(trace) = &mut ctrl.trace {
                        trace.push(ActivationSet::Only(active));
                    }
                    time += 1;
                }
            }
        }

        match done {
            None => {
                // Still in flight: park the row back into the slab.
                self.codec.encode_slice(scratch, row);
                for (k, r) in row.iter().enumerate() {
                    self.packed[base + k].store(*r, Ordering::Relaxed);
                }
                for (k, a) in act_row.iter().enumerate() {
                    self.activ[abase + k].store(*a, Ordering::Relaxed);
                }
                self.time[idx].store(time, Ordering::Relaxed);
            }
            Some(term) => {
                self.status[idx].store(term.as_status(), Ordering::Relaxed);
                let outcome = BatchOutcome {
                    index: idx,
                    termination: term,
                    outputs: scratch.outputs().to_vec(),
                    activations: act_row.iter().map(|&a| u64::from(a)).collect(),
                    time_steps: time,
                    crashed: std::mem::take(&mut ctrl.crashed),
                    admitted_round: self.admitted[idx],
                    completed_round: round,
                    trace: ctrl.trace.take(),
                };
                drop(ctrl);
                sink(outcome);
            }
        }
    }
}

/// Chunk size workers claim from their own queue per lock acquisition.
const CLAIM_CHUNK: usize = 64;

fn this_status(status: &[AtomicU8], idx: usize) -> u8 {
    status[idx].load(Ordering::Relaxed)
}

/// Runs one instance *materialized* — on a live [`Execution`] instead
/// of through the codec. This is the path for giant rings (a single
/// `n = 10M` instance shares no values, so interning would only cost),
/// and it is trivially oracle-identical: it literally calls
/// [`Execution::run`] with [`InstanceSpec::schedule`].
///
/// `quantum` only scales the reported `completed_round`
/// (`ceil(time_steps / quantum)`), keeping round-latency comparable
/// with batched instances.
///
/// # Panics
///
/// Panics if the spec's ring has fewer than three processes.
pub fn run_materialized<A>(
    alg: &A,
    spec: &InstanceSpec,
    quantum: u32,
    record_trace: bool,
) -> BatchOutcome<A::Output>
where
    A: Algorithm<Input = u64>,
    A::State: Eq + Hash,
    A::Reg: Eq + Hash,
    A::Output: Eq + Hash + Clone,
{
    let topo = Topology::cycle(spec.n()).expect("materialized instance needs a ring of size >= 3");
    let mut exec = Execution::new(alg, &topo, spec.ids.clone());
    exec.record_trace(record_trace);
    let quantum = u64::from(quantum.max(1));
    let (termination, outputs, activations, time_steps, crashed) =
        match exec.run(spec.schedule(), spec.fuel) {
            Ok(report) => {
                let term = if report.crashed.is_empty() {
                    Termination::Returned
                } else {
                    Termination::Crashed
                };
                (
                    term,
                    report.outputs,
                    report.activations,
                    report.time_steps,
                    report.crashed,
                )
            }
            Err(ModelError::NonTermination { .. }) => (
                Termination::Stalled,
                exec.outputs().to_vec(),
                (0..spec.n())
                    .map(|i| exec.activation_count(ProcessId(i)))
                    .collect(),
                exec.time(),
                Vec::new(),
            ),
            Err(other) => unreachable!("Execution::run only fails with NonTermination: {other}"),
        };
    let trace = record_trace.then(|| exec.recorded().to_vec());
    BatchOutcome {
        index: 0,
        termination,
        outputs,
        activations,
        time_steps,
        crashed,
        admitted_round: 0,
        completed_round: time_steps.div_ceil(quantum),
        trace,
    }
}
