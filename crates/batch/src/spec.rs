//! Instance specifications — what one batched ring run *is*, and the
//! single place both the batch engine and the sequential oracle build
//! their schedules from.
//!
//! Bit-identity between the two paths is a construction property, not a
//! testing accident: [`InstanceSpec::schedule`] is the only schedule
//! factory, so the batch engine and [`InstanceSpec::run_sequential`]
//! drive byte-for-byte the same `CrashPlan`/`RandomSubset` state through
//! the same `(time, working)` call sequence.

use ftcolor_model::schedule::{ActivationSet, CrashPlan, RandomSubset, Synchronous};
use ftcolor_model::{
    Algorithm, Execution, ExecutionReport, ModelError, ProcessId, Schedule, Time, Topology,
};
use std::hash::Hash;

/// Which oblivious schedule drives one instance.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleKind {
    /// Lock-step: every working process is activated at every step (the
    /// O(log* n) regime of Algorithm 3).
    Synchronous,
    /// Seeded per-process coin flips with inclusion probability `p` —
    /// the honest asynchronous adversary for service workloads.
    Random {
        /// Seed of the per-instance activation stream.
        seed: u64,
        /// Per-process inclusion probability (clamped by the schedule).
        p: f64,
    },
}

/// One batched instance: a ring `C_n` with identifiers `ids`, an
/// oblivious schedule, optional crash times, and a fuel bound.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSpec {
    /// Ring identifiers (distinct, one per process).
    pub ids: Vec<u64>,
    /// The activation schedule.
    pub sched: ScheduleKind,
    /// Crash overlay: process `p` is never activated at time `t ≥ T`.
    pub crashes: Vec<(ProcessId, Time)>,
    /// Time-step budget, after which a still-working instance counts as
    /// stalled (the batch rendering of `ModelError::NonTermination`).
    pub fuel: u64,
}

impl InstanceSpec {
    /// A clean synchronous instance.
    pub fn synchronous(ids: Vec<u64>, fuel: u64) -> Self {
        InstanceSpec {
            ids,
            sched: ScheduleKind::Synchronous,
            crashes: Vec::new(),
            fuel,
        }
    }

    /// A seeded random-subset instance.
    pub fn random(ids: Vec<u64>, seed: u64, p: f64, fuel: u64) -> Self {
        InstanceSpec {
            ids,
            sched: ScheduleKind::Random { seed, p },
            crashes: Vec::new(),
            fuel,
        }
    }

    /// Adds a crash overlay entry.
    #[must_use]
    pub fn with_crash(mut self, p: ProcessId, at: Time) -> Self {
        self.crashes.push((p, at));
        self
    }

    /// Ring size.
    pub fn n(&self) -> usize {
        self.ids.len()
    }

    /// Builds the instance's schedule. Every consumer — the batch
    /// engine's per-instance control block and the sequential oracle —
    /// must construct schedules through this method, so the two paths
    /// share one RNG stream and one crash overlay by construction.
    pub fn schedule(&self) -> BatchSchedule {
        let crashes = self.crashes.iter().copied();
        match self.sched {
            ScheduleKind::Synchronous => {
                BatchSchedule::Sync(CrashPlan::new(Synchronous::new(), crashes))
            }
            ScheduleKind::Random { seed, p } => {
                BatchSchedule::Random(CrashPlan::new(RandomSubset::new(seed, p), crashes))
            }
        }
    }

    /// Runs this instance on the plain sequential [`Execution`] path —
    /// the oracle the batch engine is pinned against.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonTermination`] when `fuel` runs out with
    /// processes still working (the batch engine reports the same
    /// instance as *stalled*).
    ///
    /// # Panics
    ///
    /// Panics if `ids` has fewer than three entries (no such cycle).
    pub fn run_sequential<A>(&self, alg: &A) -> Result<ExecutionReport<A::Output>, ModelError>
    where
        A: Algorithm<Input = u64>,
        A::State: Eq + Hash,
        A::Reg: Eq + Hash,
        A::Output: Eq + Hash,
    {
        let topo = Topology::cycle(self.n()).expect("InstanceSpec needs a ring of size >= 3");
        let mut exec = Execution::new(alg, &topo, self.ids.clone());
        exec.run(self.schedule(), self.fuel)
    }
}

/// The concrete schedule of one batched instance: the real model
/// schedule structs (not re-implementations), stored per instance so
/// the engine can feed them the exact `(time, working)` sequence the
/// sequential executor would.
#[derive(Debug, Clone)]
pub enum BatchSchedule {
    /// Lock-step under a crash overlay.
    Sync(CrashPlan<Synchronous>),
    /// Seeded coin flips under a crash overlay.
    Random(CrashPlan<RandomSubset>),
}

impl Schedule for BatchSchedule {
    fn next(&mut self, t: Time, working: &[ProcessId]) -> Option<ActivationSet> {
        match self {
            BatchSchedule::Sync(s) => s.next(t, working),
            BatchSchedule::Random(s) => s.next(t, working),
        }
    }
}

impl BatchSchedule {
    /// The crash overlay entries of this schedule.
    pub fn crashes(&self) -> Vec<(ProcessId, Time)> {
        match self {
            BatchSchedule::Sync(s) => s.crashes().collect(),
            BatchSchedule::Random(s) => s.crashes().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_streams_are_reproducible() {
        let spec =
            InstanceSpec::random(vec![4, 9, 1, 7], 33, 0.5, 1000).with_crash(ProcessId(2), 5);
        let working: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let mut a = spec.schedule();
        let mut b = spec.schedule();
        for t in 1..=20 {
            assert_eq!(a.next(t, &working), b.next(t, &working), "time {t}");
        }
    }

    #[test]
    fn crash_overlay_is_preserved() {
        let spec = InstanceSpec::synchronous(vec![1, 2, 3], 100).with_crash(ProcessId(1), 4);
        assert_eq!(spec.schedule().crashes(), vec![(ProcessId(1), 4)]);
    }
}
