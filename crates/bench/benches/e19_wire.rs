//! E19 (wire codecs): the E14 netsim workload under json / binary /
//! typed framing, plus a pure frame-level encode/decode microbench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_bench::e19_wire;
use ftcolor_core::FastFiveColoringPatched;
use ftcolor_model::{inputs, Topology};
use ftcolor_net::{run_net, Body, Codec, FaultPlan, Frame, NetConfig, SnapshotResp, WirePool};
use serde::Value;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e19_wire");
    g.sample_size(10);

    // Claim check once: every codec lands on identical outcomes.
    let rows = e19_wire::run_netsim(&[24], 1);
    for chunk in rows.chunks(3) {
        assert!(chunk
            .windows(2)
            .all(|w| { w[0].trace_digest == w[1].trace_digest && w[0].sent == w[1].sent }));
    }

    for n in [1_000usize, 10_000] {
        let topo = Topology::cycle(n).unwrap();
        let xs = inputs::staircase_poly(n);
        let clean = FaultPlan::clean();
        for codec in [Codec::Json, Codec::Binary, Codec::Typed] {
            g.bench_with_input(BenchmarkId::new(codec.name(), n), &n, |b, _| {
                b.iter(|| {
                    run_net(
                        &FastFiveColoringPatched,
                        &topo,
                        xs.clone(),
                        &clean,
                        &NetConfig::new(7).codec(codec),
                    )
                });
            });
        }
    }
    g.finish();

    // Frame-level costs, no simulator: one representative
    // `snapshot_resp` (the biggest register-protocol frame) through
    // each byte codec's encode and decode.
    let mut g = c.benchmark_group("e19_frame");
    let int = |v: u64| Value::Number(serde::Number::PosInt(v));
    let reg = Value::Object(vec![
        ("x".into(), int(987_654_321)),
        ("r".into(), Value::String("Settled".into())),
        ("a".into(), int(3)),
        ("b".into(), int(4)),
        ("c".into(), int(5)),
    ]);
    let frame = Frame {
        src: 123_456,
        dest: 123_457,
        body: Body::SnapshotResp(SnapshotResp {
            round: 41,
            value: Some(reg),
            stamp: 42,
        }),
    };
    let mut pool = WirePool::default();
    g.bench_function("binary_encode", |b| {
        b.iter(|| {
            let mut buf = pool.acquire();
            ftcolor_net::wire::encode_frame_into(&frame, &mut buf);
            pool.release(buf);
        });
    });
    let mut bin = Vec::new();
    ftcolor_net::wire::encode_frame_into(&frame, &mut bin);
    g.bench_function("binary_decode", |b| {
        b.iter(|| ftcolor_net::wire::decode_frame(&bin).expect("round-trips"));
    });
    g.bench_function("json_encode", |b| {
        b.iter(|| serde_json::to_string(&frame).expect("encodes"));
    });
    let text = serde_json::to_string(&frame).expect("encodes");
    g.bench_function("json_decode", |b| {
        b.iter(|| serde_json::from_str::<Frame>(&text).expect("round-trips"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
