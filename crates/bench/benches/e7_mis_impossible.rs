//! E7 (Property 2.1): time to find, exhaustively, the failure of each
//! MIS candidate on C3.

use criterion::{criterion_group, criterion_main, Criterion};
use ftcolor_checker::ModelChecker;
use ftcolor_core::mis::{mis_violation, EagerMis, LocalMaxMis};
use ftcolor_model::Topology;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_mis_impossible");
    g.sample_size(10);
    let topo = Topology::cycle(3).unwrap();

    // Claim check once: both candidates fail.
    let o = ModelChecker::new(&LocalMaxMis, &topo, vec![1, 2, 3])
        .explore(mis_violation)
        .unwrap();
    assert!(o.safety_violation.is_some() || o.livelock.is_some());

    g.bench_function("localmax_c3_exhaustive", |b| {
        b.iter(|| {
            ModelChecker::new(&LocalMaxMis, &topo, vec![1, 2, 3])
                .explore(mis_violation)
                .unwrap()
        });
    });
    g.bench_function("eager_c3_exhaustive", |b| {
        b.iter(|| {
            ModelChecker::new(&EagerMis, &topo, vec![1, 2, 3])
                .explore(mis_violation)
                .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
