//! E6 (Property 2.3 / exhaustive soundness): exploration throughput of
//! the model checker on C3 instances.

use criterion::{criterion_group, criterion_main, Criterion};
use ftcolor_checker::ModelChecker;
use ftcolor_core::{FiveColoring, SixColoring};
use ftcolor_model::Topology;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_modelcheck");
    g.sample_size(10);
    let topo = Topology::cycle(3).unwrap();

    // Claim check once: safety holds everywhere on C3.
    let o = ModelChecker::new(&FiveColoring, &topo, vec![0, 1, 2])
        .explore(|t, outs| t.first_conflict(outs).map(|(a, b)| format!("{a}-{b}")))
        .unwrap();
    assert!(o.safety_violation.is_none());

    g.bench_function("alg1_c3_exhaustive", |b| {
        b.iter(|| {
            ModelChecker::new(&SixColoring, &topo, vec![0, 1, 2])
                .explore(|t, outs| t.first_conflict(outs).map(|(a, b)| format!("{a}-{b}")))
                .unwrap()
        })
    });
    g.bench_function("alg2_c3_exhaustive", |b| {
        b.iter(|| {
            ModelChecker::new(&FiveColoring, &topo, vec![0, 1, 2])
                .explore(|t, outs| t.first_conflict(outs).map(|(a, b)| format!("{a}-{b}")))
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
