//! E6 (Property 2.3 / exhaustive soundness): exploration throughput of
//! the model checker on C3 instances, plus thread-scaling of the
//! parallel checker on the C5 / Algorithm 2 instance (the largest
//! exhaustive exploration in the suite). The scaling group is the
//! evidence for EXPERIMENTS.md's note that E6/E7 tables are
//! thread-count-independent but their wall-clock is not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_checker::{ModelChecker, ParallelModelChecker};
use ftcolor_core::{FiveColoring, SixColoring};
use ftcolor_model::Topology;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_modelcheck");
    g.sample_size(10);
    let topo = Topology::cycle(3).unwrap();

    // Claim check once: safety holds everywhere on C3.
    let o = ModelChecker::new(&FiveColoring, &topo, vec![0, 1, 2])
        .explore(|t, outs| t.first_conflict(outs).map(|(a, b)| format!("{a}-{b}")))
        .unwrap();
    assert!(o.safety_violation.is_none());

    g.bench_function("alg1_c3_exhaustive", |b| {
        b.iter(|| {
            ModelChecker::new(&SixColoring, &topo, vec![0, 1, 2])
                .explore(|t, outs| t.first_conflict(outs).map(|(a, b)| format!("{a}-{b}")))
                .unwrap()
        });
    });
    g.bench_function("alg2_c3_exhaustive", |b| {
        b.iter(|| {
            ModelChecker::new(&FiveColoring, &topo, vec![0, 1, 2])
                .explore(|t, outs| t.first_conflict(outs).map(|(a, b)| format!("{a}-{b}")))
                .unwrap()
        });
    });
    g.finish();
}

/// Thread-scaling on C5 / Algorithm 2: identical outcome at every
/// thread count (asserted below), wall-clock should drop with jobs.
fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_parallel_scaling");
    g.sample_size(10);
    let topo = Topology::cycle(5).unwrap();
    let ids = vec![0u64, 1, 2, 3, 4];
    let safety = |t: &Topology, outs: &[Option<u64>]| {
        t.first_conflict(outs).map(|(a, b)| format!("{a}-{b}"))
    };
    // Cap keeps one exploration in benchmark territory (~10^5 configs)
    // while staying deep enough for the frontier to go wide.
    let cap = 120_000;

    let baseline = ParallelModelChecker::new(&FiveColoring, &topo, ids.clone())
        .with_max_configs(cap)
        .with_jobs(1)
        .explore(safety)
        .unwrap();

    for jobs in [1usize, 2, 4, 8] {
        let o = ParallelModelChecker::new(&FiveColoring, &topo, ids.clone())
            .with_max_configs(cap)
            .with_jobs(jobs)
            .explore(safety)
            .unwrap();
        assert_eq!(baseline, o, "outcome must not depend on jobs={jobs}");
        g.bench_with_input(
            BenchmarkId::new("alg2_c5_exhaustive", jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    ParallelModelChecker::new(&FiveColoring, &topo, ids.clone())
                        .with_max_configs(cap)
                        .with_jobs(jobs)
                        .explore(safety)
                        .unwrap()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench, bench_scaling);
criterion_main!(benches);
