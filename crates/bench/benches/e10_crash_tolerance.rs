//! E10 (crash tolerance): simulator crash sweep and the OS-thread
//! substrate with jitter + crash injection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_bench::e10_crash_tolerance;
use ftcolor_core::SixColoring;
use ftcolor_model::inputs;
use ftcolor_model::Topology;
use ftcolor_runtime::{run_threaded, RunOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_crash_tolerance");
    g.sample_size(10);

    // Claim check once: safety unconditional, Algorithm 1 never starves.
    for r in e10_crash_tolerance::run(32, 1) {
        assert!(r.safe, "{r:?}");
        if r.algorithm == "Alg1" {
            assert_eq!(r.starved, 0);
        }
    }

    g.bench_function("sim_sweep_n32", |b| {
        b.iter(|| e10_crash_tolerance::run(32, 1));
    });

    for n in [8usize, 16] {
        let topo = Topology::cycle(n).unwrap();
        let ids = inputs::random_permutation(n, 2);
        g.bench_with_input(BenchmarkId::new("threads_with_crashes", n), &n, |b, _| {
            b.iter(|| {
                let opts = RunOptions::new().with_seed(7).crash(1, 0).cap(50_000);
                run_threaded(&SixColoring, &topo, ids.clone(), &opts)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
