//! E16 (batch service): Criterion timings for the struct-of-arrays
//! batch engine — a burst fleet of small instances through the packed
//! slab path, and a mid-sized synchronous ring through the
//! materialized path. The headline scales (1M fleet, 10M ring) live in
//! `bench_service` / `BENCH_service.json`; these benches keep the same
//! code paths honest at Criterion-friendly sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_bench::e16_service::{fleet_row, ring_row};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_service");
    g.sample_size(10);

    // Claim check once: both workloads finish valid (the row builders
    // assert validity internally).
    let fleet = fleet_row(1_000);
    assert_eq!(fleet.completed, 1_000);
    let ring = ring_row(10_000);
    assert_eq!(ring.completed, 1);

    for instances in [1_000u64, 10_000] {
        g.bench_with_input(
            BenchmarkId::new("fleet_c5_burst", instances),
            &instances,
            |b, &instances| b.iter(|| fleet_row(instances)),
        );
    }

    for n in [10_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("ring_logstar_sync", n), &n, |b, &n| {
            b.iter(|| ring_row(n));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
