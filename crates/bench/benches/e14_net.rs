//! E14 (network substrate): messages/sec and events/sec of the
//! discrete-event simulator at n ∈ {100, 1k, 10k}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_bench::e14_net;
use ftcolor_core::FastFiveColoringPatched;
use ftcolor_model::{inputs, Topology};
use ftcolor_net::{run_net, FaultPlan, NetConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_net");
    g.sample_size(10);

    // Claim check once: proper and live under every measured plan.
    for r in e14_net::run(&[16, 48], 1) {
        assert!(r.proper && r.returned, "{r:?}");
    }

    for n in [100usize, 1_000, 10_000] {
        let topo = Topology::cycle(n).unwrap();
        let xs = inputs::staircase_poly(n);
        let clean = FaultPlan::clean();
        let lossy = FaultPlan::lossy(0.10);
        g.bench_with_input(BenchmarkId::new("clean", n), &n, |b, _| {
            b.iter(|| {
                run_net(
                    &FastFiveColoringPatched,
                    &topo,
                    xs.clone(),
                    &clean,
                    &NetConfig::new(7),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("lossy_10pct", n), &n, |b, _| {
            b.iter(|| {
                run_net(
                    &FastFiveColoringPatched,
                    &topo,
                    xs.clone(),
                    &lossy,
                    &NetConfig::new(7),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
