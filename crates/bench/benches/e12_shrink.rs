//! E12 (counterexample shrinking): throughput of the delta-debugging
//! shrinker on the two canonical witnesses — the EagerMis C4 safety
//! violation and the Algorithm 2 C3 crash livelock — plus job-scaling
//! of the parallel candidate evaluator on a noisy (tail-padded)
//! safety witness, where candidate batches are large enough for the
//! workers to matter. The shrunk result is identical at every jobs
//! value (asserted below); only wall-clock may change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_checker::{ModelChecker, Shrinker};
use ftcolor_core::mis::{mis_violation, EagerMis};
use ftcolor_core::FiveColoring;
use ftcolor_model::schedule::ActivationSet;
use ftcolor_model::Topology;

fn coloring_safety(topo: &Topology, outs: &[Option<u64>]) -> Option<String> {
    topo.first_conflict(outs)
        .map(|(a, b)| format!("conflict {a}-{b}"))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_shrink");
    g.sample_size(20);

    // EagerMis C4 safety witness, straight from the checker.
    let topo4 = Topology::cycle(4).unwrap();
    let ids4 = vec![5u64, 9, 2, 1];
    let violation = ModelChecker::new(&EagerMis, &topo4, ids4.clone())
        .explore(mis_violation)
        .unwrap()
        .safety_violation
        .expect("the In/In violation");
    g.bench_function("eager_mis_c4_safety", |b| {
        b.iter(|| {
            Shrinker::new(&EagerMis, &topo4, ids4.clone())
                .shrink_safety(&violation.schedule, &mis_violation)
                .unwrap()
        });
    });

    // Alg2 C3 livelock witness.
    let topo3 = Topology::cycle(3).unwrap();
    let ids3 = vec![0u64, 1, 2];
    let livelock = ModelChecker::new(&FiveColoring, &topo3, ids3.clone())
        .explore(coloring_safety)
        .unwrap()
        .livelock
        .expect("the C3 livelock");
    g.bench_function("alg2_c3_livelock", |b| {
        b.iter(|| {
            Shrinker::new(&FiveColoring, &topo3, ids3.clone())
                .shrink_livelock(&livelock)
                .unwrap()
        });
    });
    g.finish();
}

/// Job-scaling on a deliberately noisy witness: 40 synchronous padding
/// steps around the real violation give the ddmin and slot passes large
/// candidate batches to evaluate in parallel.
fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_shrink_scaling");
    g.sample_size(10);
    let topo = Topology::cycle(4).unwrap();
    let ids = vec![5u64, 9, 2, 1];
    let violation = ModelChecker::new(&EagerMis, &topo, ids.clone())
        .explore(mis_violation)
        .unwrap()
        .safety_violation
        .expect("the In/In violation");
    let mut noisy = violation.schedule.clone();
    noisy.extend(std::iter::repeat_n(ActivationSet::All, 40));

    let baseline = Shrinker::new(&EagerMis, &topo, ids.clone())
        .shrink_safety(&noisy, &mis_violation)
        .unwrap();

    for jobs in [1usize, 2, 4, 8] {
        let out = Shrinker::new(&EagerMis, &topo, ids.clone())
            .with_jobs(jobs)
            .shrink_safety(&noisy, &mis_violation)
            .unwrap();
        assert_eq!(out.schedule, baseline.schedule, "jobs={jobs}");
        assert_eq!(out.stats, baseline.stats, "jobs={jobs}");
        g.bench_with_input(BenchmarkId::new("noisy_mis_c4", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                Shrinker::new(&EagerMis, &topo, ids.clone())
                    .with_jobs(jobs)
                    .shrink_safety(&noisy, &mis_violation)
                    .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench, bench_scaling);
criterion_main!(benches);
