//! E15 (cluster substrate): throughput of the real-process substrate's
//! deterministic core — the node state machine driven over the wire
//! codec (every frame encoded and re-decoded, as the pipes would), and
//! journal replay of the committed golden trace. The OS-process parts
//! (spawn, SIGKILL, pipe scheduling) are wall-clock-bound and measured
//! by the E2E suite, not Criterion.

use std::collections::VecDeque;
use std::path::Path;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_cluster::{replay_trace, ClusterTrace, NodeCore};
use ftcolor_core::FiveColoringPatched;
use ftcolor_model::inputs;
use ftcolor_net::{Body, Frame, ORCHESTRATOR};

/// Drives a ring of `n` in-process [`NodeCore`]s to a full coloring,
/// round-tripping every frame through the JSON wire codec — the
/// cluster substrate minus the operating system. Returns the colors.
fn ring_to_completion(n: usize, seed: u64) -> Vec<Option<u64>> {
    let alg = FiveColoringPatched;
    let ids = inputs::random_unique(n, 10_000, seed);
    let mut queue: VecDeque<Frame> = VecDeque::new();
    let mut cores: Vec<NodeCore<FiveColoringPatched>> = (0..n)
        .map(|i| {
            let mut nb = vec![(i + n - 1) % n, (i + 1) % n];
            nb.sort_unstable();
            NodeCore::new(&alg, i, nb, ids[i])
        })
        .collect();
    for core in &mut cores {
        queue.extend(core.start());
    }
    let mut colors: Vec<Option<u64>> = vec![None; n];
    while let Some(frame) = queue.pop_front() {
        let frame = Frame::decode(&frame.encode()).expect("wire round trip");
        if frame.dest == ORCHESTRATOR {
            if let Body::Decide(d) = &frame.body {
                colors[frame.src] = serde_json::from_value(d.output.clone()).ok();
            }
            continue;
        }
        queue.extend(cores[frame.dest].on_frame(&frame));
    }
    colors
}

fn golden_trace() -> Option<ClusterTrace> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/cluster_alg2p_c5_crash.json");
    let text = std::fs::read_to_string(path).ok()?;
    ClusterTrace::from_json(&text).ok()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_cluster");
    g.sample_size(10);

    // Claim check once: the codec-coupled ring still colors properly.
    let colors = ring_to_completion(16, 5);
    assert!(colors.iter().all(|c| matches!(c, Some(0..=4))));
    assert!((0..16).all(|i| colors[i] != colors[(i + 1) % 16]));

    for n in [10usize, 100, 1_000] {
        g.bench_with_input(BenchmarkId::new("core_ring_codec", n), &n, |b, &n| {
            b.iter(|| ring_to_completion(n, 7));
        });
    }

    if let Some(trace) = golden_trace() {
        replay_trace(&FiveColoringPatched, &trace).expect("golden trace replays");
        g.bench_function("replay_golden_c5_crash", |b| {
            b.iter(|| replay_trace(&FiveColoringPatched, &trace).expect("replays"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
