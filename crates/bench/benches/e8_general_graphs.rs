//! E8 (Appendix A): Algorithm 4 wall-clock across graph families.

use criterion::{criterion_group, criterion_main, Criterion};
use ftcolor_core::DeltaSquaredColoring;
use ftcolor_model::inputs;
use ftcolor_model::prelude::*;

fn run(topo: &Topology, ids: &[u64]) -> ExecutionReport<ftcolor_core::PairColor> {
    let mut exec = Execution::new(&DeltaSquaredColoring, topo, ids.to_vec());
    exec.run(Synchronous::new(), 1_000_000).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_general_graphs");
    g.sample_size(10);
    let cases = vec![
        ("torus8x8", Topology::grid(8, 8, true).unwrap()),
        ("petersen", Topology::petersen()),
        ("rr_n100_d6", Topology::random_regular(100, 6, 7).unwrap()),
        ("clique12", Topology::clique(12).unwrap()),
    ];
    for (name, topo) in cases {
        let ids = inputs::random_permutation(topo.len(), 3);
        // Claim check once.
        let report = run(&topo, &ids);
        assert!(report.all_returned());
        assert!(topo.is_proper_partial_coloring(&report.outputs));
        let delta = topo.max_degree() as u64;
        assert!(report.outputs.iter().flatten().all(|c| c.weight() <= delta));

        g.bench_function(name, |b| b.iter(|| run(&topo, &ids)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
