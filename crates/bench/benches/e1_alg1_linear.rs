//! E1 (Theorem 3.1): wall-clock of Algorithm 1 executions across ring
//! sizes and schedules; asserts the bound before timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_bench::common::{run_cycle, SchedKind};
use ftcolor_checker::invariants::theorem_3_1_bound;
use ftcolor_core::SixColoring;
use ftcolor_model::inputs;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_alg1_linear");
    g.sample_size(10);
    for n in [16usize, 64, 256, 1024] {
        let ids = inputs::staircase(n);
        // Claim check once, outside the timing loop.
        let (topo, report) =
            run_cycle(&SixColoring, &ids, SchedKind::Sync, 0, 400 * n as u64).unwrap();
        assert!(report.all_returned());
        assert!(topo.is_proper_partial_coloring(&report.outputs));
        assert!(report.max_activations() <= theorem_3_1_bound(n));

        g.bench_with_input(BenchmarkId::new("staircase_sync", n), &n, |b, _| {
            b.iter(|| run_cycle(&SixColoring, &ids, SchedKind::Sync, 0, 400 * n as u64).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("staircase_roundrobin", n), &n, |b, _| {
            b.iter(|| {
                run_cycle(&SixColoring, &ids, SchedKind::RoundRobin, 0, 400 * n as u64).unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
