//! E5 (Theorem 4.4, headline): Algorithm 3's near-constant rounds vs
//! Algorithm 2's linear rounds on the adversarial staircase — the
//! wall-clock mirror of the paper's central complexity claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_bench::common::{run_cycle, SchedKind};
use ftcolor_checker::invariants::theorem_4_4_bound;
use ftcolor_core::{FastFiveColoring, FiveColoring};
use ftcolor_model::inputs;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_alg3_logstar");
    g.sample_size(10);
    for n in [64usize, 1024, 16384] {
        let ids = inputs::staircase_poly(n);
        let (_, report) = run_cycle(&FastFiveColoring, &ids, SchedKind::Sync, 0, 100_000).unwrap();
        assert!(report.all_returned());
        assert!(report.max_activations() <= theorem_4_4_bound(n));

        g.bench_with_input(BenchmarkId::new("alg3_staircase", n), &n, |b, _| {
            b.iter(|| run_cycle(&FastFiveColoring, &ids, SchedKind::Sync, 0, 100_000).unwrap());
        });
        if n <= 1024 {
            g.bench_with_input(BenchmarkId::new("alg2_staircase", n), &n, |b, _| {
                b.iter(|| {
                    run_cycle(
                        &FiveColoring,
                        &ids,
                        SchedKind::Sync,
                        0,
                        40 * n as u64 + 1000,
                    )
                    .unwrap()
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
