//! E3 (Theorem 3.11): wall-clock of Algorithm 2 across ring sizes;
//! asserts the 3n+8 bound and the 5-color palette before timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_bench::common::{coloring_ok, run_cycle, SchedKind};
use ftcolor_checker::invariants::theorem_3_11_bound;
use ftcolor_core::FiveColoring;
use ftcolor_model::inputs;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_alg2_linear");
    g.sample_size(10);
    for n in [16usize, 64, 256, 1024] {
        let ids = inputs::staircase(n);
        let (topo, report) =
            run_cycle(&FiveColoring, &ids, SchedKind::Sync, 0, 600 * n as u64).unwrap();
        assert!(report.all_returned());
        assert!(coloring_ok(&topo, &report, |c| *c, 5));
        assert!(report.max_activations() <= theorem_3_11_bound(n));

        g.bench_with_input(BenchmarkId::new("staircase_sync", n), &n, |b, _| {
            b.iter(|| run_cycle(&FiveColoring, &ids, SchedKind::Sync, 0, 600 * n as u64).unwrap());
        });
        let rand_ids = inputs::random_permutation(n, 3);
        g.bench_with_input(BenchmarkId::new("random_random", n), &n, |b, _| {
            b.iter(|| {
                run_cycle(
                    &FiveColoring,
                    &rand_ids,
                    SchedKind::Random,
                    5,
                    600 * n as u64,
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
