//! E11 (model separation): DECOUPLED 3-coloring vs asynchronous
//! 5-coloring wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_bench::e11_decoupled;
use ftcolor_core::decoupled_ring::DecoupledThreeColoring;
use ftcolor_model::decoupled::DecoupledExecution;
use ftcolor_model::inputs;
use ftcolor_model::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_decoupled");
    g.sample_size(10);

    // Claim check once.
    for r in e11_decoupled::run(&[12, 40], 1) {
        assert!(r.proper, "{r:?}");
    }

    for n in [64usize, 512] {
        let topo = Topology::cycle(n).unwrap();
        let ids = inputs::random_unique(n, 1 << 40, 7);
        let alg = DecoupledThreeColoring::new();
        g.bench_with_input(BenchmarkId::new("decoupled_3coloring", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = DecoupledExecution::new(&alg, &topo, ids.clone());
                exec.run(Synchronous::new(), 10_000).unwrap()
            });
        });
    }
    g.bench_function("separation_sweep", |b| {
        b.iter(|| e11_decoupled::run(&[12, 40], 1));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
