//! E2 (Lemma 3.9): timing of the per-process chain analysis plus an
//! executed ring whose per-process bounds are asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_bench::common::{run_cycle, SchedKind};
use ftcolor_checker::chains::ChainAnalysis;
use ftcolor_core::SixColoring;
use ftcolor_model::inputs;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_chain_bound");
    g.sample_size(10);
    for n in [64usize, 1024, 16384] {
        let ids = inputs::random_permutation(n, 2);
        g.bench_with_input(BenchmarkId::new("chain_analysis", n), &n, |b, _| {
            b.iter(|| ChainAnalysis::for_cycle(&ids));
        });
    }
    // Executed bound check at a fixed size.
    let n = 128;
    let ids = inputs::random_permutation(n, 7);
    let analysis = ChainAnalysis::for_cycle(&ids);
    let (_, report) = run_cycle(&SixColoring, &ids, SchedKind::Sync, 0, 100_000).unwrap();
    for p in 0..n {
        assert!(report.activations[p] <= analysis.lemma_3_9_bound(p));
    }
    g.bench_function("bounded_execution_128", |b| {
        b.iter(|| run_cycle(&SixColoring, &ids, SchedKind::Sync, 0, 100_000).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
