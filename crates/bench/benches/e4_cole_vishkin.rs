//! E4 (Lemmas 4.1–4.3): throughput of the reduction function `f` and of
//! the exhaustive lemma verification sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ftcolor_bench::e4_cole_vishkin;
use ftcolor_core::cole_vishkin::{reduce, reduce_chain};
use ftcolor_model::logstar::cv_iterations_below_10;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_cole_vishkin");
    g.bench_function("reduce_single", |b| {
        b.iter(|| reduce(black_box(0xDEAD_BEEF_CAFE), black_box(0x1234_5678)));
    });
    g.bench_function("reduce_chain_1k", |b| {
        let chain: Vec<u64> = (0..1000u64).map(|i| 10_000_000 - i * 997).collect();
        b.iter(|| reduce_chain(black_box(&chain)));
    });
    g.bench_function("contraction_iterations_u64max", |b| {
        b.iter(|| cv_iterations_below_10(black_box(u64::MAX)));
    });
    g.sample_size(10);
    g.bench_function("lemma_sweep_small", |b| {
        b.iter(|| e4_cole_vishkin::run_exhaustive(256, 64, 64));
    });
    // Claim check: zero violations in a moderately large sweep.
    for row in e4_cole_vishkin::run_exhaustive(1024, 128, 128) {
        assert_eq!(row.violations, 0, "{row:?}");
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
