//! E9 (baselines): synchronous Cole–Vishkin vs Algorithm 3, and
//! rank-based renaming on the clique.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcolor_bench::common::{run_cycle, SchedKind};
use ftcolor_core::renaming::RankRenaming;
use ftcolor_core::sync_local::{ColeVishkinThree, CvInput};
use ftcolor_core::FastFiveColoring;
use ftcolor_model::inputs;
use ftcolor_model::prelude::*;

fn run_cv(n: usize, ids: &[u64]) -> u64 {
    let alg = ColeVishkinThree::for_max_id(*ids.iter().max().unwrap());
    let topo = Topology::cycle(n).unwrap();
    let cv_inputs: Vec<CvInput> = ids
        .iter()
        .enumerate()
        .map(|(pos, &x)| CvInput { x, pos, n })
        .collect();
    let mut exec = Execution::new(&alg, &topo, cv_inputs);
    exec.run(Synchronous::new(), 1_000_000)
        .unwrap()
        .max_activations()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_baselines");
    g.sample_size(10);
    for n in [64usize, 1024] {
        let ids = inputs::staircase_poly(n);
        // Both round counts are near-constant; the wait-free algorithm
        // pays a constant factor.
        let cv_rounds = run_cv(n, &ids);
        let (_, rep) = run_cycle(&FastFiveColoring, &ids, SchedKind::Sync, 0, 100_000).unwrap();
        assert!(cv_rounds <= 12);
        assert!(rep.max_activations() <= 12 * cv_rounds);

        g.bench_with_input(BenchmarkId::new("cole_vishkin_sync", n), &n, |b, _| {
            b.iter(|| run_cv(n, &ids));
        });
        g.bench_with_input(BenchmarkId::new("alg3_sync", n), &n, |b, _| {
            b.iter(|| run_cycle(&FastFiveColoring, &ids, SchedKind::Sync, 0, 100_000).unwrap());
        });
    }
    for n in [4usize, 8] {
        let topo = Topology::clique(n).unwrap();
        let ids = inputs::random_unique(n, 10_000, 1);
        g.bench_with_input(BenchmarkId::new("renaming_clique", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = Execution::new(&RankRenaming, &topo, ids.clone());
                exec.run(RandomSubset::new(3, 0.5), 1_000_000).unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
