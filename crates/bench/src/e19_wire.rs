//! **E19 — the binary wire codec (`ftcolor-net::wire`).** The E14
//! workload (Algorithm 3 patched on the ring, clean and 10%-lossy
//! plans), re-run under every codec the substrates speak:
//!
//! * `json` — the line-delimited JSON baseline every substrate shipped
//!   with;
//! * `binary` — the length-prefixed binary frame codec plus buffer
//!   pooling (the perf claim: ≥3× netsim event throughput at n = 10k);
//! * `typed` — frames handed through the simulator's router as typed
//!   values with **no** byte serialization at all, while fault
//!   accounting still charges the measured binary frame size. This is
//!   the codec-tax ceiling: the gap between `typed` and a byte codec is
//!   exactly what that codec's encode/decode costs.
//!
//! Every row records the codec-independent outcome fields (sent,
//! delivered, events, rounds, trace digest, verdicts) precisely so the
//! regression guard can pin them: a codec that changes any of them is a
//! semantics bug, not a performance trade. Cluster rows (real
//! process rings over pipes) are wall-clock-dependent end to end, so
//! the guard reports them without gating.

use ftcolor_cluster::{cluster_run, ClusterOptions};
use ftcolor_core::FastFiveColoringPatched;
use ftcolor_model::{inputs, SubstrateReport, Topology};
use ftcolor_net::{run_net, Codec, FaultPlan, NetConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One (workload, n, plan, codec) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetBenchRow {
    /// `netsim` (deterministic simulator) or `cluster` (real process
    /// ring; wall-clock-dependent, reported but never gated).
    pub workload: String,
    /// Algorithm label.
    pub alg: String,
    /// Ring size.
    pub n: usize,
    /// Fault-plan label (`clean`, `lossy-10%`).
    pub plan: String,
    /// Wire codec (`json`, `binary`, `typed`).
    pub codec: String,
    /// Messages sent (deterministic on netsim; must match exactly).
    pub sent: u64,
    /// Messages delivered (deterministic on netsim).
    pub delivered: u64,
    /// Simulator events processed (deterministic on netsim; 0 for
    /// cluster rows).
    pub events: u64,
    /// Maximum rounds committed by any process (deterministic on
    /// netsim; 0 for cluster rows).
    pub rounds_max: u64,
    /// FNV-1a digest of the delivery trace / journal (deterministic on
    /// netsim — and identical across codecs, which is the whole point).
    pub trace_digest: String,
    /// The output is a proper partial coloring.
    pub proper: bool,
    /// Every non-crashed process returned.
    pub returned: bool,
    /// Bytes on the wire (typed rows charge measured binary sizes).
    pub wire_bytes: u64,
    /// Wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Frames encoded per wall-clock second (0 for typed rows, which
    /// encode nothing).
    pub frames_per_sec: u64,
    /// Simulator events per wall-clock second (the gated figure).
    pub events_per_sec: u64,
}

const CODECS: [Codec; 3] = [Codec::Json, Codec::Binary, Codec::Typed];

/// The netsim cell grid for `sizes`, in row order.
pub fn netsim_cells(sizes: &[usize]) -> Vec<(usize, &'static str, Codec)> {
    let mut cells = Vec::new();
    for &n in sizes {
        for (label, _) in plans() {
            for codec in CODECS {
                cells.push((n, label, codec));
            }
        }
    }
    cells
}

fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("clean", FaultPlan::clean()),
        ("lossy-10%", FaultPlan::lossy(0.10)),
    ]
}

/// The fault plan behind a row's `plan` label, for re-running one cell.
pub fn plan_by_label(label: &str) -> Option<FaultPlan> {
    plans()
        .into_iter()
        .find(|(l, _)| *l == label)
        .map(|(_, p)| p)
}

/// Repetitions per netsim cell; the recorded wall is the median, so a
/// first-run warm-up (page cache, allocator arenas) or one descheduled
/// rep cannot skew a committed throughput row.
const NETSIM_REPS: usize = 5;

/// Measures one netsim cell: [`NETSIM_REPS`] deterministic reps of
/// (n, plan, codec), median wall. A real node process speaks exactly
/// one codec for its whole life, so the honest steady state for a
/// codec's throughput is a process that has only ever run that codec —
/// `bench_net` therefore runs each cell in its own subprocess; running
/// cells back to back in one process lets each codec's allocator and
/// cache wake shift every later cell's clock (measurably: ±15% on the
/// n = 10k rows).
pub fn run_netsim_cell(n: usize, label: &str, codec: Codec, seed: u64) -> NetBenchRow {
    let alg = FastFiveColoringPatched;
    let topo = Topology::cycle(n).expect("n >= 3");
    let xs = inputs::staircase_poly(n);
    let plan = plan_by_label(label).unwrap_or_else(|| panic!("unknown plan label `{label}`"));
    let cfg = NetConfig::new(seed).codec(codec);
    let mut walls = Vec::with_capacity(NETSIM_REPS);
    let mut row = None;
    let mut digest = 0u64;
    for rep in 0..NETSIM_REPS {
        let t0 = Instant::now();
        let report = run_net(&alg, &topo, xs.clone(), &plan, &cfg);
        walls.push(t0.elapsed().as_secs_f64());
        if rep == 0 {
            digest = report.trace.digest();
            // wall = 1.0 makes the per-second fields hold raw counts
            // until the median patch-up below.
            row = Some(netsim_row(&topo, n, label, codec, &report, 1.0));
        } else {
            assert_eq!(
                report.trace.digest(),
                digest,
                "netsim reps must be deterministic"
            );
        }
    }
    let mut row = row.expect("NETSIM_REPS >= 1");
    walls.sort_by(f64::total_cmp);
    let wall = walls[NETSIM_REPS / 2];
    row.wall_ms = wall * 1e3;
    row.frames_per_sec = (row.frames_per_sec as f64 / wall) as u64;
    row.events_per_sec = (row.events as f64 / wall) as u64;
    row
}

/// Runs the E14 netsim workload (Algorithm 3 patched) across `sizes` ×
/// {clean, lossy-10%} × {json, binary, typed}, all in this process.
/// Tests use this directly; `bench_net` instead isolates each cell in
/// a subprocess (see [`run_netsim_cell`] for why).
pub fn run_netsim(sizes: &[usize], seed: u64) -> Vec<NetBenchRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        for (label, _) in plans() {
            for codec in CODECS {
                rows.push(run_netsim_cell(n, label, codec, seed));
            }
        }
    }
    rows
}

/// Builds one netsim row from a report and its (median) wall seconds.
fn netsim_row(
    topo: &Topology,
    n: usize,
    label: &str,
    codec: Codec,
    report: &ftcolor_net::NetReport<u64>,
    wall: f64,
) -> NetBenchRow {
    NetBenchRow {
        workload: "netsim".into(),
        alg: "alg3p".into(),
        n,
        plan: label.into(),
        codec: codec.name().into(),
        sent: report.stats.sent,
        delivered: report.stats.delivered,
        events: report.stats.events_processed,
        rounds_max: report.rounds.iter().copied().max().unwrap_or(0),
        trace_digest: format!("{:016x}", report.trace.digest()),
        proper: topo.is_proper_partial_coloring(&report.outputs),
        returned: report.all_correct_returned(),
        wire_bytes: report.wire.bytes_on_wire,
        wall_ms: wall * 1e3,
        frames_per_sec: (report.wire.frames_encoded as f64 / wall.max(1e-9)) as u64,
        events_per_sec: (report.stats.events_processed as f64 / wall.max(1e-9)) as u64,
    }
}

/// Runs the real-process cluster cell (`alg2p`, clean plan) under the
/// two codecs real pipes speak. Needs the `ftcolor` binary for the node
/// processes; returns no rows (with a note on stderr) when `node_cmd`
/// does not exist — the netsim rows are the gated ones either way.
pub fn run_cluster_rows(n: usize, seed: u64, node_cmd: &std::path::Path) -> Vec<NetBenchRow> {
    if !node_cmd.exists() {
        eprintln!(
            "e19: skipping cluster rows: node binary not found at {}",
            node_cmd.display()
        );
        return Vec::new();
    }
    let mut rows = Vec::new();
    for codec in [Codec::Json, Codec::Binary] {
        let opts = ClusterOptions::default()
            .node_cmd(node_cmd.to_path_buf())
            .codec(codec);
        let t0 = Instant::now();
        let outcome = match cluster_run("alg2p", n, seed, &FaultPlan::clean(), &opts) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("e19: cluster row ({}) failed: {e}", codec.name());
                continue;
            }
        };
        let wall = t0.elapsed().as_secs_f64();
        let s = &outcome.summary;
        rows.push(NetBenchRow {
            workload: "cluster".into(),
            alg: "alg2p".into(),
            n,
            plan: "clean".into(),
            codec: codec.name().into(),
            sent: s.wire_frames_encoded,
            delivered: s.wire_frames_decoded,
            events: 0,
            rounds_max: 0,
            trace_digest: s.trace_digest.clone(),
            proper: s.valid,
            returned: s.all_correct_returned,
            wire_bytes: s.wire_bytes,
            wall_ms: wall * 1e3,
            frames_per_sec: (s.wire_frames_encoded as f64 / wall.max(1e-9)) as u64,
            events_per_sec: 0,
        });
    }
    rows
}

/// Renders the E19 table.
pub fn table(rows: &[NetBenchRow]) -> String {
    crate::common::render_table(
        "E19 — wire codecs: the E14 workload under json / binary / typed \
         framing (typed = no byte serialization, binary-sized accounting)",
        &[
            "workload", "n", "plan", "codec", "sent", "events", "bytes", "wall ms", "events/s",
            "proper", "returned",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.n.to_string(),
                    r.plan.clone(),
                    r.codec.clone(),
                    r.sent.to_string(),
                    r.events.to_string(),
                    r.wire_bytes.to_string(),
                    format!("{:.1}", r.wall_ms),
                    r.events_per_sec.to_string(),
                    r.proper.to_string(),
                    r.returned.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every codec lands on the same deterministic outcome fields — the
    /// bench rows themselves re-prove the cross-codec claim — and the
    /// byte accounting orders the codecs the way the design says it
    /// must (binary < json; typed == binary).
    #[test]
    fn codec_rows_agree_on_everything_but_bytes_and_time() {
        let rows = run_netsim(&[24], 7);
        assert_eq!(rows.len(), 6);
        for chunk in rows.chunks(3) {
            let [json, bin, typed] = chunk else {
                panic!("rows come in codec triples")
            };
            for r in chunk {
                assert!(r.proper && r.returned, "{r:?}");
            }
            for other in [bin, typed] {
                assert_eq!(json.sent, other.sent);
                assert_eq!(json.delivered, other.delivered);
                assert_eq!(json.events, other.events);
                assert_eq!(json.rounds_max, other.rounds_max);
                assert_eq!(json.trace_digest, other.trace_digest);
            }
            assert!(bin.wire_bytes < json.wire_bytes, "{bin:?} vs {json:?}");
            assert_eq!(bin.wire_bytes, typed.wire_bytes);
            assert_eq!(typed.frames_per_sec, 0, "typed rows encode nothing");
        }
    }
}
