//! **E4 — Lemmas 4.1–4.3.** The identifier-reduction function `f`:
//! iterating its worst-case contraction reaches the constant regime
//! (< 10) within `O(log* x)` steps (Lemma 4.1); `f(x,y) < y` whenever
//! `x > y ≥ 10` (Lemma 4.2); and reductions along monotone chains never
//! collide (Lemma 4.3).

use ftcolor_core::cole_vishkin::reduce;
use ftcolor_model::logstar::{cv_iterations_below_10, log_star_u64};
use serde::Serialize;

/// One row of the Lemma 4.1 contraction table.
#[derive(Debug, Clone, Serialize)]
pub struct ContractionRow {
    /// Identifier magnitude: `x = 2^bits − 1`.
    pub bits: u32,
    /// Iterations of `F(x) = 2⌈log₂(x+1)⌉+1` until `< 10`.
    pub iterations: u32,
    /// `log* x`.
    pub log_star: u32,
    /// `iterations / max(log*, 1)` ×1000.
    pub ratio_milli: u64,
}

/// Sweeps identifier magnitudes for the Lemma 4.1 claim.
pub fn run_contraction() -> Vec<ContractionRow> {
    [4u32, 8, 12, 16, 20, 24, 32, 40, 48, 56, 63]
        .iter()
        .map(|&bits| {
            let x = if bits >= 63 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let iterations = cv_iterations_below_10(x);
            let log_star = log_star_u64(x);
            ContractionRow {
                bits,
                iterations,
                log_star,
                ratio_milli: u64::from(iterations) * 1000 / u64::from(log_star.max(1)),
            }
        })
        .collect()
}

/// Exhaustive verification counts for Lemmas 4.2 and 4.3 over a range.
#[derive(Debug, Clone, Serialize)]
pub struct ExhaustiveRow {
    /// Which lemma.
    pub lemma: &'static str,
    /// Number of (x, y[, z]) tuples checked.
    pub tuples_checked: u64,
    /// Number of violations found (must be 0).
    pub violations: u64,
}

/// Exhaustively checks Lemma 4.2 for `10 ≤ y < limit`, `y < x ≤ y+span`,
/// and Lemma 4.3 for all `x > y > z` below `limit3`.
pub fn run_exhaustive(limit: u64, span: u64, limit3: u64) -> Vec<ExhaustiveRow> {
    let mut checked2 = 0u64;
    let mut bad2 = 0u64;
    for y in 10..limit {
        for x in y + 1..=y + span {
            checked2 += 1;
            if reduce(x, y) >= y {
                bad2 += 1;
            }
        }
    }
    let mut checked3 = 0u64;
    let mut bad3 = 0u64;
    for x in 0..limit3 {
        for y in 0..x {
            for z in 0..y {
                checked3 += 1;
                if reduce(x, y) == reduce(y, z) {
                    bad3 += 1;
                }
            }
        }
    }
    vec![
        ExhaustiveRow {
            lemma: "4.2 (f(x,y) < y for x > y ≥ 10)",
            tuples_checked: checked2,
            violations: bad2,
        },
        ExhaustiveRow {
            lemma: "4.3 (f(x,y) ≠ f(y,z) for x > y > z)",
            tuples_checked: checked3,
            violations: bad3,
        },
    ]
}

/// Renders both E4 tables.
pub fn table(contraction: &[ContractionRow], exhaustive: &[ExhaustiveRow]) -> String {
    let mut out = crate::common::render_table(
        "E4a (Lemma 4.1) — iterations of the CV contraction to reach < 10",
        &["bits", "iterations", "log*", "ratio"],
        &contraction
            .iter()
            .map(|r| {
                vec![
                    r.bits.to_string(),
                    r.iterations.to_string(),
                    r.log_star.to_string(),
                    format!("{:.2}", r.ratio_milli as f64 / 1000.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    out.push('\n');
    out.push_str(&crate::common::render_table(
        "E4b (Lemmas 4.2, 4.3) — exhaustive verification",
        &["lemma", "tuples", "violations"],
        &exhaustive
            .iter()
            .map(|r| {
                vec![
                    r.lemma.to_string(),
                    r.tuples_checked.to_string(),
                    r.violations.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contraction_tracks_log_star() {
        let rows = run_contraction();
        for r in &rows {
            assert!(
                r.iterations <= 3 * r.log_star.max(1),
                "{r:?}: α would exceed 3"
            );
        }
        // Flatness: 63-bit ids need at most one more iteration than 16-bit.
        let it = |bits| rows.iter().find(|r| r.bits == bits).unwrap().iterations;
        assert!(it(63) <= it(16) + 1);
    }

    #[test]
    fn exhaustive_is_violation_free() {
        let rows = run_exhaustive(300, 50, 64);
        for r in &rows {
            assert_eq!(r.violations, 0, "{r:?}");
            assert!(r.tuples_checked > 1000);
        }
    }
}
