//! **E8 — Appendix A.** Algorithm 4 wait-free colors arbitrary graphs of
//! maximum degree `Δ` with the triangular palette
//! `{(a,b) : a+b ≤ Δ}` of size `(Δ+1)(Δ+2)/2 = O(Δ²)`, in linear time.

use ftcolor_core::{DeltaSquaredColoring, PairColor};
use ftcolor_model::inputs;
use ftcolor_model::prelude::*;
use serde::Serialize;

/// One graph instance measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Graph label.
    pub graph: String,
    /// Node count.
    pub n: usize,
    /// Maximum degree `Δ`.
    pub delta: usize,
    /// Palette bound `(Δ+1)(Δ+2)/2`.
    pub palette_bound: u64,
    /// Distinct colors actually used.
    pub colors_used: usize,
    /// Measured max activations.
    pub max_activations: u64,
    /// Whether output was proper and within the palette.
    pub ok: bool,
}

fn measure(topo: &Topology, ids: Vec<u64>, schedule: impl Schedule) -> Row {
    let delta = topo.max_degree();
    let mut exec = Execution::new(&DeltaSquaredColoring, topo, ids);
    let report = exec.run(schedule, 2_000_000).expect("wait-free");
    let colors: std::collections::HashSet<PairColor> =
        report.outputs.iter().flatten().copied().collect();
    Row {
        graph: topo.name().to_string(),
        n: topo.len(),
        delta,
        palette_bound: PairColor::palette_size(delta as u64),
        colors_used: colors.len(),
        max_activations: report.max_activations(),
        ok: report.all_returned()
            && topo.is_proper_partial_coloring(&report.outputs)
            && report
                .outputs
                .iter()
                .flatten()
                .all(|c| c.weight() <= delta as u64),
    }
}

/// Runs Algorithm 4 over the E8 graph zoo.
pub fn run(seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    let graphs: Vec<Topology> = vec![
        Topology::cycle(24).unwrap(),
        Topology::petersen(),
        Topology::grid(5, 5, false).unwrap(),
        Topology::grid(4, 4, true).unwrap(),
        Topology::random_regular(30, 3, seed).unwrap(),
        Topology::random_regular(30, 4, seed + 1).unwrap(),
        Topology::random_regular(30, 6, seed + 2).unwrap(),
        Topology::random_regular(32, 8, seed + 3).unwrap(),
        Topology::gnp_bounded(40, 0.12, 6, seed + 4).unwrap(),
        Topology::hypercube(5).unwrap(),
        Topology::complete_bipartite(5, 7).unwrap(),
        Topology::star(12).unwrap(),
        Topology::clique(7).unwrap(),
    ];
    for topo in &graphs {
        let ids = inputs::random_permutation(topo.len(), seed ^ 0xE8);
        rows.push(measure(topo, ids.clone(), Synchronous::new()));
        rows.push(measure(topo, ids, RandomSubset::new(seed + 9, 0.5)));
    }
    rows
}

/// Renders the E8 table.
pub fn table(rows: &[Row]) -> String {
    crate::common::render_table(
        "E8 (Appendix A) — Algorithm 4: O(Δ²) palette on general graphs",
        &[
            "graph",
            "n",
            "Δ",
            "palette",
            "colors used",
            "max acts",
            "ok",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.graph.clone(),
                    r.n.to_string(),
                    r.delta.to_string(),
                    r.palette_bound.to_string(),
                    r.colors_used.to_string(),
                    r.max_activations.to_string(),
                    r.ok.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_is_all_ok() {
        let rows = run(11);
        assert!(rows.len() >= 20);
        for r in &rows {
            assert!(r.ok, "{r:?}");
            assert!(r.colors_used as u64 <= r.palette_bound);
        }
    }

    #[test]
    fn palette_grows_quadratically_with_delta() {
        let rows = run(5);
        let d3 = rows.iter().find(|r| r.delta == 3).unwrap();
        let d8 = rows.iter().find(|r| r.delta == 8).unwrap();
        assert_eq!(d3.palette_bound, 10);
        assert_eq!(d8.palette_bound, 45);
    }
}
