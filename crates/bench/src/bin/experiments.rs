//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p ftcolor-bench --release --bin experiments            # full sweep
//! cargo run -p ftcolor-bench --release --bin experiments -- quick  # CI-sized
//! cargo run -p ftcolor-bench --release --bin experiments -- jobs=8 # parallel E6/E7
//! ```
//!
//! `jobs=N` sets the model-checker worker-thread count for E6/E7
//! (`jobs=0` = all CPUs, default 1); the tables are identical for every
//! value, only wall-clock changes.
//!
//! Prints each E1–E10 table to stdout and writes machine-readable rows
//! to `experiments.json` in the current directory, plus the E6
//! model-checker cost snapshot to `BENCH_modelcheck.json` (algorithm ×
//! instance × bound → configs, configs/sec, peak visited-set bytes).
//! The committed `BENCH_modelcheck.json` at the repository root is the
//! quick-mode baseline CI guards against (see `bench_guard`); rerun
//! `experiments -- quick jobs=4` at the root to refresh it.

use ftcolor_bench::*;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct AllResults {
    e1: Vec<e1_alg1_linear::Row>,
    e2: Vec<e2_chain_bound::Row>,
    e2_sweep: Vec<e2_chain_bound::SweepRow>,
    e3: Vec<e3_alg2_linear::Row>,
    e4_contraction: Vec<e4_cole_vishkin::ContractionRow>,
    e4_exhaustive: Vec<e4_cole_vishkin::ExhaustiveRow>,
    e5: Vec<e5_alg3_logstar::Row>,
    e6: Vec<e6_modelcheck::Row>,
    e7: Vec<e7_mis_impossible::Row>,
    e7_ssb: Vec<e7_mis_impossible::SsbRow>,
    e8: Vec<e8_general_graphs::Row>,
    e9_cv: Vec<e9_baselines::CvRow>,
    e9_renaming: Vec<e9_baselines::RenameRow>,
    e10: Vec<e10_crash_tolerance::Row>,
    e11: Vec<e11_decoupled::Row>,
    e14: Vec<e14_net::Row>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let jobs: usize = std::env::args()
        .find_map(|a| a.strip_prefix("jobs=").map(str::to_string))
        .map_or(1, |v| v.parse().expect("jobs=N needs a number"));
    let t0 = Instant::now();
    let section = |name: &str| println!("\n===== {name} ({:.1?} elapsed) =====", t0.elapsed());

    section("E1");
    let e1 = if quick {
        e1_alg1_linear::run(&[3, 5, 16, 100], 2)
    } else {
        e1_alg1_linear::run(&[3, 4, 5, 8, 16, 32, 100, 316, 1000], 4)
    };
    print!("{}", e1_alg1_linear::table(&e1));

    section("E2");
    let e2 = if quick {
        e2_chain_bound::run(&[8, 20], 2)
    } else {
        e2_chain_bound::run(&[8, 20, 50, 120], 5)
    };
    print!("{}", e2_chain_bound::table(&e2));
    let e2_sweep =
        e2_chain_bound::run_chain_sweep(if quick { 120 } else { 480 }, &[1, 2, 4, 8, 16, 32, 64]);
    print!("{}", e2_chain_bound::sweep_table(&e2_sweep));

    section("E3");
    let e3 = if quick {
        e3_alg2_linear::run(&[3, 6, 16], 2)
    } else {
        e3_alg2_linear::run(&[3, 4, 6, 12, 33, 100, 316], 4)
    };
    print!("{}", e3_alg2_linear::table(&e3));

    section("E4");
    let e4c = e4_cole_vishkin::run_contraction();
    let e4e = if quick {
        e4_cole_vishkin::run_exhaustive(300, 60, 80)
    } else {
        e4_cole_vishkin::run_exhaustive(4096, 200, 256)
    };
    print!("{}", e4_cole_vishkin::table(&e4c, &e4e));

    section("E5 (headline)");
    let e5 = if quick {
        e5_alg3_logstar::run(&[4, 16, 64, 256, 1024], 1024)
    } else {
        e5_alg3_logstar::run(
            &[
                4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
            ],
            16384,
        )
    };
    print!("{}", e5_alg3_logstar::table(&e5));
    match e5_alg3_logstar::crossover(&e5) {
        Some(x) => println!("crossover (Alg3 beats Alg2 on the staircase) at n = {x}"),
        None => println!("no crossover within the measured sizes"),
    }

    section("E6 (exhaustive model checking)");
    let e6 = e6_modelcheck::run(if quick { 400_000 } else { 5_000_000 }, jobs);
    print!("{}", e6_modelcheck::table(&e6));

    section("E7 (MIS impossibility)");
    let e7 = e7_mis_impossible::run(jobs);
    let e7s = e7_mis_impossible::run_ssb();
    print!("{}", e7_mis_impossible::table(&e7, &e7s));

    section("E8 (general graphs)");
    let e8 = e8_general_graphs::run(17);
    print!("{}", e8_general_graphs::table(&e8));

    section("E9 (baselines)");
    let e9c = if quick {
        e9_baselines::run_cv(&[8, 64, 512])
    } else {
        e9_baselines::run_cv(&[8, 64, 512, 4096, 32768, 262144])
    };
    let e9r = e9_baselines::run_renaming(&[2, 3, 4, 5, 6, 8, 10], if quick { 2 } else { 5 });
    print!("{}", e9_baselines::table(&e9c, &e9r));

    section("E10 (crash tolerance)");
    let mut e10 = e10_crash_tolerance::run(if quick { 24 } else { 60 }, 3);
    e10.extend(e10_crash_tolerance::run_threads(
        if quick { 12 } else { 32 },
        5,
    ));
    print!("{}", e10_crash_tolerance::table(&e10));

    section("E11 (DECOUPLED model separation)");
    let e11 = if quick {
        e11_decoupled::run(&[12, 40], 3)
    } else {
        e11_decoupled::run(&[12, 40, 120, 400], 3)
    };
    print!("{}", e11_decoupled::table(&e11));

    section("E14 (message-passing substrate)");
    let e14 = if quick {
        e14_net::run(&[16, 100], 3)
    } else {
        e14_net::run(&[100, 1_000, 10_000], 3)
    };
    print!("{}", e14_net::table(&e14));

    let all = AllResults {
        e1,
        e2,
        e2_sweep,
        e3,
        e4_contraction: e4c,
        e4_exhaustive: e4e,
        e5,
        e6,
        e7,
        e7_ssb: e7s,
        e8,
        e9_cv: e9c,
        e9_renaming: e9r,
        e10,
        e11,
        e14,
    };
    let bench = e6_modelcheck::snapshot(&all.e6);
    let json = serde_json::to_string_pretty(&bench).expect("serializable snapshot");
    std::fs::write("BENCH_modelcheck.json", json).expect("write BENCH_modelcheck.json");

    let json = serde_json::to_string_pretty(&all).expect("serializable results");
    std::fs::write("experiments.json", json).expect("write experiments.json");
    println!(
        "\nAll experiments done in {:.1?}; rows written to experiments.json \
         and BENCH_modelcheck.json",
        t0.elapsed()
    );
}
