//! Generates the `BENCH_service.json` snapshot for the batch service.
//!
//! ```text
//! cargo run -p ftcolor-bench --release --bin bench_service -- [--quick] [--out FILE]
//! ```
//!
//! Default (no flags) runs quick mode **and** full mode — the 1M-
//! instance `C5` fleet and the `n = 10M` `O(log* n)` ring — which is
//! minutes of single-core work; that is how the committed baseline at
//! the repository root was produced. `--quick` runs only the CI-sized
//! rows (seconds), which is what CI regenerates and feeds to
//! `bench_guard --service` against the committed baseline (the full
//! rows then show up as one-sided and are skipped by the guard).

use ftcolor_bench::e16_service;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick_only = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_service.json".to_string());

    let t0 = std::time::Instant::now();
    let mut rows = e16_service::quick_rows();
    if quick_only {
        eprintln!("quick rows done in {:.1?}", t0.elapsed());
    } else {
        eprintln!(
            "quick rows done in {:.1?}; starting full mode (1M fleet + 10M ring, \
             minutes of single-core work)…",
            t0.elapsed()
        );
        rows.extend(e16_service::full_rows());
        eprintln!("full rows done in {:.1?}", t0.elapsed());
    }

    print!("{}", e16_service::table(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("serializable snapshot");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("snapshot written to {out}");
}
