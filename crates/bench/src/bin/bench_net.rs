//! Generates the `BENCH_net.json` snapshot for the wire-codec
//! experiment (E19).
//!
//! ```text
//! cargo run -p ftcolor-bench --release --bin bench_net -- [--quick] [--out FILE]
//! ```
//!
//! Default (no flags) runs the full sweep — n ∈ {100, 1k, 10k} on the
//! netsim workload plus the real-process cluster cell — which is how
//! the committed baseline at the repository root was produced.
//! `--quick` runs only the CI-sized netsim rows (n ∈ {100, 1k},
//! seconds), which is what CI regenerates and feeds to
//! `bench_guard --net` against the committed baseline (the 10k and
//! cluster rows then show up as one-sided and are skipped; the E19
//! perf claims — ≥3× the pre-codec events/s, codec-gap floor over the
//! JSON twin — are re-checked against the *baseline's* own 10k rows,
//! so they stay pinned without re-measuring on shared CI runners).

use ftcolor_bench::e19_wire::{self, NetBenchRow};

/// Runs one netsim cell in a fresh subprocess (this same binary with
/// `--one-cell`) and parses the row it prints. A process that has run
/// one codec's workload leaves its allocator and caches in a state that
/// shifts the next cell's clock by double-digit percents at n = 10k —
/// per-cell isolation is what makes the committed rows comparable. The
/// fallback when the subprocess cannot be spawned is in-process
/// measurement.
fn cell_in_subprocess(n: usize, plan: &str, codec: ftcolor_net::Codec, seed: u64) -> NetBenchRow {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(_) => return e19_wire::run_netsim_cell(n, plan, codec, seed),
    };
    let out = std::process::Command::new(&exe)
        .args([
            "--one-cell",
            &n.to_string(),
            plan,
            codec.name(),
            &seed.to_string(),
        ])
        .output();
    match out {
        Ok(o) if o.status.success() => {
            let text = String::from_utf8_lossy(&o.stdout);
            serde_json::from_str(text.trim()).expect("--one-cell prints one row as JSON")
        }
        _ => e19_wire::run_netsim_cell(n, plan, codec, seed),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--one-cell") {
        let [n, plan, codec, seed] = &args[1..] else {
            eprintln!("usage: bench_net --one-cell <n> <plan> <codec> <seed>");
            std::process::exit(2);
        };
        let row = e19_wire::run_netsim_cell(
            n.parse().expect("n"),
            plan,
            ftcolor_net::Codec::parse(codec).expect("codec"),
            seed.parse().expect("seed"),
        );
        println!("{}", serde_json::to_string(&row).expect("row encodes"));
        return;
    }
    let quick_only = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_net.json".to_string());

    let t0 = std::time::Instant::now();
    let sizes: &[usize] = if quick_only {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    let mut rows: Vec<NetBenchRow> = e19_wire::netsim_cells(sizes)
        .into_iter()
        .map(|(n, plan, codec)| cell_in_subprocess(n, plan, codec, 7))
        .collect();
    if !quick_only {
        // The node binary is a sibling of this one in target/<profile>.
        let node_cmd = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("ftcolor")))
            .unwrap_or_else(|| "ftcolor".into());
        rows.extend(e19_wire::run_cluster_rows(5, 7, &node_cmd));
    }
    eprintln!("rows done in {:.1?}", t0.elapsed());

    print!("{}", e19_wire::table(&rows));
    let json = serde_json::to_string_pretty(&rows).expect("serializable snapshot");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("snapshot written to {out}");
}
