//! Bench-snapshot regression guard for the model-checker core.
//!
//! ```text
//! cargo run -p ftcolor-bench --release --bin bench_guard -- \
//!     <baseline.json> <current.json> [--max-drop PCT]
//! ```
//!
//! Compares a freshly generated `BENCH_modelcheck.json` against the
//! committed baseline and exits nonzero when the exploration core
//! regressed:
//!
//! * **configuration counts must match exactly** on rows with the same
//!   (algorithm, instance, symmetry, bound) — the checker is
//!   deterministic at every thread count, so any drift is a semantic
//!   change, not noise;
//! * **throughput must not drop by more than `--max-drop` percent**
//!   (default 30) on any comparable row with at least 100k baseline
//!   configurations (smaller rows finish in about a millisecond and
//!   their throughput figure is timer noise). Peak visited-set bytes
//!   are reported but not gated (they track `configs`
//!   deterministically; the count check already covers them).
//!
//! Rows present on only one side are reported and ignored — that is
//! what happens when the instance list grows, or when the baseline was
//! generated at a different cap than the current run.
//!
//! With `--service`, the same comparison runs over `BENCH_service.json`
//! rows instead (see `e16_service`): the **deterministic fields**
//! (completed, rounds, latency percentiles, outputs digest) must match
//! exactly on rows with the same (workload, algorithm, n, instances) —
//! the batch engine is deterministic at every thread count, so drift is
//! a semantic change — and throughput is gated only on rows with at
//! least 100k instances (the CI-sized fleet finishes too fast for its
//! colorings/sec to be more than timer noise). Peak RSS is reported,
//! never gated. The committed baseline carries the full-mode rows (1M
//! fleet, 10M ring); CI regenerates quick mode only, so those show up
//! one-sided and are skipped.

use ftcolor_bench::e16_service::ServiceBenchRow;
use ftcolor_bench::e6_modelcheck::BenchRow;

fn load(path: &str) -> Result<Vec<BenchRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn key(r: &BenchRow) -> (String, String, bool, bool, usize) {
    (
        r.algorithm.clone(),
        r.instance.clone(),
        r.symmetry,
        r.por,
        r.bound,
    )
}

fn main() {
    let mut max_drop: u64 = 30;
    let mut service = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--max-drop" {
            max_drop = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--max-drop needs a percentage");
        } else if a == "--service" {
            service = true;
        } else {
            paths.push(a);
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_guard <baseline.json> <current.json> [--max-drop PCT] [--service]");
        std::process::exit(2);
    }
    let max_drop = max_drop.min(100);
    if service {
        guard_service(&paths[0], &paths[1], max_drop);
        return;
    }
    let baseline = load(&paths[0]).unwrap_or_else(|e| {
        eprintln!("bench_guard: {e}");
        std::process::exit(2);
    });
    let current = load(&paths[1]).unwrap_or_else(|e| {
        eprintln!("bench_guard: {e}");
        std::process::exit(2);
    });

    let mut compared = 0usize;
    let mut failures = Vec::new();
    for b in &baseline {
        let Some(c) = current.iter().find(|c| key(c) == key(b)) else {
            println!(
                "skip (no current row): {} / {} sym={} por={} bound={}",
                b.algorithm, b.instance, b.symmetry, b.por, b.bound
            );
            continue;
        };
        compared += 1;
        if c.configs != b.configs {
            failures.push(format!(
                "{} / {} sym={} por={}: configs {} -> {} (determinism break!)",
                b.algorithm, b.instance, b.symmetry, b.por, b.configs, c.configs
            ));
        }
        // configs/sec may only drop by max_drop percent. Tiny instances
        // finish in about a millisecond, so their throughput figure is
        // timer noise — only multi-second rows are gated.
        if b.configs >= 100_000 && c.configs_per_sec * 100 < b.configs_per_sec * (100 - max_drop) {
            failures.push(format!(
                "{} / {} sym={} por={}: throughput {} -> {} cfg/s (>{}% drop)",
                b.algorithm,
                b.instance,
                b.symmetry,
                b.por,
                b.configs_per_sec,
                c.configs_per_sec,
                max_drop
            ));
        }
        println!(
            "ok: {} / {} sym={} por={}: {} configs, {} -> {} cfg/s, peak {} -> {} KiB",
            b.algorithm,
            b.instance,
            b.symmetry,
            b.por,
            c.configs,
            b.configs_per_sec,
            c.configs_per_sec,
            b.peak_visited_bytes / 1024,
            c.peak_visited_bytes / 1024
        );
    }
    for c in &current {
        if !baseline.iter().any(|b| key(b) == key(c)) {
            println!(
                "new row (no baseline): {} / {} sym={} por={} bound={}",
                c.algorithm, c.instance, c.symmetry, c.por, c.bound
            );
        }
    }
    if compared == 0 {
        eprintln!("bench_guard: no comparable rows — baseline and current were generated at different caps?");
        std::process::exit(2);
    }
    if failures.is_empty() {
        println!("bench_guard: {compared} rows compared, no regression");
    } else {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}

fn load_service(path: &str) -> Result<Vec<ServiceBenchRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn service_key(r: &ServiceBenchRow) -> (String, String, usize, u64) {
    (r.workload.clone(), r.algorithm.clone(), r.n, r.instances)
}

/// The `--service` comparison over `BENCH_service.json` rows (see the
/// module docs for the exact/gated split).
fn guard_service(baseline_path: &str, current_path: &str, max_drop: u64) {
    let baseline = load_service(baseline_path).unwrap_or_else(|e| {
        eprintln!("bench_guard: {e}");
        std::process::exit(2);
    });
    let current = load_service(current_path).unwrap_or_else(|e| {
        eprintln!("bench_guard: {e}");
        std::process::exit(2);
    });
    let mut compared = 0usize;
    let mut failures = Vec::new();
    for b in &baseline {
        let Some(c) = current.iter().find(|c| service_key(c) == service_key(b)) else {
            println!(
                "skip (no current row): {} / {} n={} instances={}",
                b.workload, b.algorithm, b.n, b.instances
            );
            continue;
        };
        compared += 1;
        let exact: [(&str, String, String); 5] = [
            (
                "completed",
                b.completed.to_string(),
                c.completed.to_string(),
            ),
            ("rounds", b.rounds.to_string(), c.rounds.to_string()),
            (
                "latency_p50",
                b.latency_p50.to_string(),
                c.latency_p50.to_string(),
            ),
            (
                "latency_p99",
                b.latency_p99.to_string(),
                c.latency_p99.to_string(),
            ),
            (
                "outputs_digest",
                b.outputs_digest.clone(),
                c.outputs_digest.clone(),
            ),
        ];
        for (field, bv, cv) in &exact {
            if bv != cv {
                failures.push(format!(
                    "{} / {}: {field} {bv} -> {cv} (determinism break!)",
                    b.workload, b.algorithm
                ));
            }
        }
        if b.instances >= 100_000
            && c.colorings_per_sec * 100 < b.colorings_per_sec * (100 - max_drop)
        {
            failures.push(format!(
                "{} / {}: throughput {} -> {} colorings/s (>{}% drop)",
                b.workload, b.algorithm, b.colorings_per_sec, c.colorings_per_sec, max_drop
            ));
        }
        println!(
            "ok: {} / {} n={} instances={}: {} completed, {} -> {} colorings/s, \
             peak {} -> {} KiB",
            b.workload,
            b.algorithm,
            b.n,
            b.instances,
            c.completed,
            b.colorings_per_sec,
            c.colorings_per_sec,
            b.peak_rss_kib,
            c.peak_rss_kib
        );
    }
    for c in &current {
        if !baseline.iter().any(|b| service_key(b) == service_key(c)) {
            println!(
                "new row (no baseline): {} / {} n={} instances={}",
                c.workload, c.algorithm, c.n, c.instances
            );
        }
    }
    if compared == 0 {
        eprintln!(
            "bench_guard: no comparable service rows — baseline and current were \
             generated at different scales?"
        );
        std::process::exit(2);
    }
    if failures.is_empty() {
        println!("bench_guard: {compared} service rows compared, no regression");
    } else {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
