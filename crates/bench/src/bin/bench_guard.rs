//! Bench-snapshot regression guard for the model-checker core.
//!
//! ```text
//! cargo run -p ftcolor-bench --release --bin bench_guard -- \
//!     <baseline.json> <current.json> [--max-drop PCT]
//! ```
//!
//! Compares a freshly generated `BENCH_modelcheck.json` against the
//! committed baseline and exits nonzero when the exploration core
//! regressed:
//!
//! * **configuration counts must match exactly** on rows with the same
//!   (algorithm, instance, symmetry, bound) — the checker is
//!   deterministic at every thread count, so any drift is a semantic
//!   change, not noise;
//! * **throughput must not drop by more than `--max-drop` percent**
//!   (default 30) on any comparable row with at least 100k baseline
//!   configurations (smaller rows finish in about a millisecond and
//!   their throughput figure is timer noise). Peak visited-set bytes
//!   are reported but not gated (they track `configs`
//!   deterministically; the count check already covers them).
//!
//! Rows present on only one side are reported and ignored — that is
//! what happens when the instance list grows, or when the baseline was
//! generated at a different cap than the current run.
//!
//! With `--service`, the same comparison runs over `BENCH_service.json`
//! rows instead (see `e16_service`): the **deterministic fields**
//! (completed, rounds, latency percentiles, outputs digest) must match
//! exactly on rows with the same (workload, algorithm, n, instances) —
//! the batch engine is deterministic at every thread count, so drift is
//! a semantic change — and throughput is gated only on rows with at
//! least 100k instances (the CI-sized fleet finishes too fast for its
//! colorings/sec to be more than timer noise). Peak RSS is reported,
//! never gated. The committed baseline carries the full-mode rows (1M
//! fleet, 10M ring); CI regenerates quick mode only, so those show up
//! one-sided and are skipped.
//!
//! With `--net`, the comparison runs over `BENCH_net.json` rows (see
//! `e19_wire`). Netsim rows are fully deterministic, so their outcome
//! fields (sent, delivered, events, rounds, trace digest, verdicts,
//! wire bytes) must match exactly — on any machine — and events/sec is
//! drop-gated on rows with at least 100k events. Cluster rows are real
//! process rings whose frame counts race on OS scheduling; they are
//! reported, never gated. On top of the baseline-vs-current diff, the
//! guard re-checks the committed baseline's own E19 perf claims (see
//! `net_claims`): CI regenerates only the quick rows, so the claims on
//! the n = 10k rows stay pinned to the committed snapshot instead of
//! being re-measured on shared runners.

use ftcolor_bench::e16_service::ServiceBenchRow;
use ftcolor_bench::e19_wire::NetBenchRow;
use ftcolor_bench::e6_modelcheck::BenchRow;

fn load(path: &str) -> Result<Vec<BenchRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn key(r: &BenchRow) -> (String, String, bool, bool, usize) {
    (
        r.algorithm.clone(),
        r.instance.clone(),
        r.symmetry,
        r.por,
        r.bound,
    )
}

fn main() {
    let mut max_drop: u64 = 30;
    let mut service = false;
    let mut net = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--max-drop" {
            max_drop = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--max-drop needs a percentage");
        } else if a == "--service" {
            service = true;
        } else if a == "--net" {
            net = true;
        } else {
            paths.push(a);
        }
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: bench_guard <baseline.json> <current.json> \
             [--max-drop PCT] [--service | --net]"
        );
        std::process::exit(2);
    }
    let max_drop = max_drop.min(100);
    if service {
        guard_service(&paths[0], &paths[1], max_drop);
        return;
    }
    if net {
        guard_net(&paths[0], &paths[1], max_drop);
        return;
    }
    let baseline = load(&paths[0]).unwrap_or_else(|e| {
        eprintln!("bench_guard: {e}");
        std::process::exit(2);
    });
    let current = load(&paths[1]).unwrap_or_else(|e| {
        eprintln!("bench_guard: {e}");
        std::process::exit(2);
    });

    let mut compared = 0usize;
    let mut failures = Vec::new();
    for b in &baseline {
        let Some(c) = current.iter().find(|c| key(c) == key(b)) else {
            println!(
                "skip (no current row): {} / {} sym={} por={} bound={}",
                b.algorithm, b.instance, b.symmetry, b.por, b.bound
            );
            continue;
        };
        compared += 1;
        if c.configs != b.configs {
            failures.push(format!(
                "{} / {} sym={} por={}: configs {} -> {} (determinism break!)",
                b.algorithm, b.instance, b.symmetry, b.por, b.configs, c.configs
            ));
        }
        // configs/sec may only drop by max_drop percent. Tiny instances
        // finish in about a millisecond, so their throughput figure is
        // timer noise — only multi-second rows are gated.
        if b.configs >= 100_000 && c.configs_per_sec * 100 < b.configs_per_sec * (100 - max_drop) {
            failures.push(format!(
                "{} / {} sym={} por={}: throughput {} -> {} cfg/s (>{}% drop)",
                b.algorithm,
                b.instance,
                b.symmetry,
                b.por,
                b.configs_per_sec,
                c.configs_per_sec,
                max_drop
            ));
        }
        println!(
            "ok: {} / {} sym={} por={}: {} configs, {} -> {} cfg/s, peak {} -> {} KiB",
            b.algorithm,
            b.instance,
            b.symmetry,
            b.por,
            c.configs,
            b.configs_per_sec,
            c.configs_per_sec,
            b.peak_visited_bytes / 1024,
            c.peak_visited_bytes / 1024
        );
    }
    for c in &current {
        if !baseline.iter().any(|b| key(b) == key(c)) {
            println!(
                "new row (no baseline): {} / {} sym={} por={} bound={}",
                c.algorithm, c.instance, c.symmetry, c.por, c.bound
            );
        }
    }
    if compared == 0 {
        eprintln!("bench_guard: no comparable rows — baseline and current were generated at different caps?");
        std::process::exit(2);
    }
    if failures.is_empty() {
        println!("bench_guard: {compared} rows compared, no regression");
    } else {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}

fn load_service(path: &str) -> Result<Vec<ServiceBenchRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn service_key(r: &ServiceBenchRow) -> (String, String, usize, u64) {
    (r.workload.clone(), r.algorithm.clone(), r.n, r.instances)
}

/// The `--service` comparison over `BENCH_service.json` rows (see the
/// module docs for the exact/gated split).
fn guard_service(baseline_path: &str, current_path: &str, max_drop: u64) {
    let baseline = load_service(baseline_path).unwrap_or_else(|e| {
        eprintln!("bench_guard: {e}");
        std::process::exit(2);
    });
    let current = load_service(current_path).unwrap_or_else(|e| {
        eprintln!("bench_guard: {e}");
        std::process::exit(2);
    });
    let mut compared = 0usize;
    let mut failures = Vec::new();
    for b in &baseline {
        let Some(c) = current.iter().find(|c| service_key(c) == service_key(b)) else {
            println!(
                "skip (no current row): {} / {} n={} instances={}",
                b.workload, b.algorithm, b.n, b.instances
            );
            continue;
        };
        compared += 1;
        let exact: [(&str, String, String); 5] = [
            (
                "completed",
                b.completed.to_string(),
                c.completed.to_string(),
            ),
            ("rounds", b.rounds.to_string(), c.rounds.to_string()),
            (
                "latency_p50",
                b.latency_p50.to_string(),
                c.latency_p50.to_string(),
            ),
            (
                "latency_p99",
                b.latency_p99.to_string(),
                c.latency_p99.to_string(),
            ),
            (
                "outputs_digest",
                b.outputs_digest.clone(),
                c.outputs_digest.clone(),
            ),
        ];
        for (field, bv, cv) in &exact {
            if bv != cv {
                failures.push(format!(
                    "{} / {}: {field} {bv} -> {cv} (determinism break!)",
                    b.workload, b.algorithm
                ));
            }
        }
        if b.instances >= 100_000
            && c.colorings_per_sec * 100 < b.colorings_per_sec * (100 - max_drop)
        {
            failures.push(format!(
                "{} / {}: throughput {} -> {} colorings/s (>{}% drop)",
                b.workload, b.algorithm, b.colorings_per_sec, c.colorings_per_sec, max_drop
            ));
        }
        println!(
            "ok: {} / {} n={} instances={}: {} completed, {} -> {} colorings/s, \
             peak {} -> {} KiB",
            b.workload,
            b.algorithm,
            b.n,
            b.instances,
            c.completed,
            b.colorings_per_sec,
            c.colorings_per_sec,
            b.peak_rss_kib,
            c.peak_rss_kib
        );
    }
    for c in &current {
        if !baseline.iter().any(|b| service_key(b) == service_key(c)) {
            println!(
                "new row (no baseline): {} / {} n={} instances={}",
                c.workload, c.algorithm, c.n, c.instances
            );
        }
    }
    if compared == 0 {
        eprintln!(
            "bench_guard: no comparable service rows — baseline and current were \
             generated at different scales?"
        );
        std::process::exit(2);
    }
    if failures.is_empty() {
        println!("bench_guard: {compared} service rows compared, no regression");
    } else {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}

/// The pre-wire-codec E14 throughput this PR improved on: the netsim
/// n = 10k clean cell under the then-only JSON framing, measured on the
/// canonical bench container immediately before the wire codec landed
/// (median of 5 reps, 314,764 events in 1.340 s — see EXPERIMENTS.md
/// §E19 for the measurement log). The committed baseline's binary row
/// must beat 3× this figure; the snapshot and this constant were
/// measured on the same host minutes apart, which is what makes the
/// ratio meaningful. Regenerating `BENCH_net.json` on different
/// hardware means re-measuring this constant there too.
const PRE_WIRE_EVENTS_PER_SEC: u64 = 234_847;

/// Codec-gap floor: at n = 10k the binary rows must keep at least this
/// ratio over the JSON rows *within the same snapshot* (measured
/// 2.3–2.7×; the floor trips only if the binary path genuinely rots).
/// Same-file ratios cancel the host's speed, so this check is portable.
const NET_CODEC_GAP_FLOOR_X10: u64 = 20;

fn load_net(path: &str) -> Result<Vec<NetBenchRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn net_key(r: &NetBenchRow) -> (String, String, usize, String, String) {
    (
        r.workload.clone(),
        r.alg.clone(),
        r.n,
        r.plan.clone(),
        r.codec.clone(),
    )
}

/// The committed snapshot's own E19 perf claims, re-checked on every
/// guard run: the n = 10k binary rows must (a) beat 3× the pre-codec
/// E14 throughput on the clean row and (b) keep the codec gap over
/// their JSON twins. Returns failure strings.
fn net_claims(baseline: &[NetBenchRow]) -> Vec<String> {
    let mut failures = Vec::new();
    let big: Vec<&NetBenchRow> = baseline
        .iter()
        .filter(|r| r.workload == "netsim" && r.n >= 10_000)
        .collect();
    if big.is_empty() {
        failures.push("baseline has no netsim n >= 10k rows to pin the perf claim".into());
        return failures;
    }
    for r in &big {
        if r.codec != "binary" {
            continue;
        }
        if r.plan == "clean" && r.events_per_sec < 3 * PRE_WIRE_EVENTS_PER_SEC {
            failures.push(format!(
                "perf claim broken: n={} {} binary {} events/s < 3x pre-codec {}",
                r.n, r.plan, r.events_per_sec, PRE_WIRE_EVENTS_PER_SEC
            ));
        }
        let Some(json) = big
            .iter()
            .find(|j| j.codec == "json" && j.n == r.n && j.plan == r.plan)
        else {
            failures.push(format!("n={} {}: binary row has no json twin", r.n, r.plan));
            continue;
        };
        if r.events_per_sec * 10 < json.events_per_sec * NET_CODEC_GAP_FLOOR_X10 {
            failures.push(format!(
                "codec gap collapsed: n={} {} binary {} vs json {} events/s (< {}.{}x)",
                r.n,
                r.plan,
                r.events_per_sec,
                json.events_per_sec,
                NET_CODEC_GAP_FLOOR_X10 / 10,
                NET_CODEC_GAP_FLOOR_X10 % 10
            ));
        } else {
            println!(
                "claim ok: n={} {} binary/json = {:.2}x, binary/pre-codec = {:.2}x",
                r.n,
                r.plan,
                r.events_per_sec as f64 / json.events_per_sec.max(1) as f64,
                r.events_per_sec as f64 / PRE_WIRE_EVENTS_PER_SEC as f64
            );
        }
    }
    failures
}

/// The `--net` comparison over `BENCH_net.json` rows (see the module
/// docs for the exact/gated split).
fn guard_net(baseline_path: &str, current_path: &str, max_drop: u64) {
    let baseline = load_net(baseline_path).unwrap_or_else(|e| {
        eprintln!("bench_guard: {e}");
        std::process::exit(2);
    });
    let current = load_net(current_path).unwrap_or_else(|e| {
        eprintln!("bench_guard: {e}");
        std::process::exit(2);
    });
    let mut compared = 0usize;
    let mut failures = net_claims(&baseline);
    for b in &baseline {
        let Some(c) = current.iter().find(|c| net_key(c) == net_key(b)) else {
            println!(
                "skip (no current row): {} / {} n={} {} {}",
                b.workload, b.alg, b.n, b.plan, b.codec
            );
            continue;
        };
        if b.workload != "netsim" {
            // Cluster rows race on OS scheduling: report, never gate.
            println!(
                "cluster (reported only): {} n={} {}: {} -> {} frames, {} -> {} bytes",
                b.alg, b.n, b.codec, b.sent, c.sent, b.wire_bytes, c.wire_bytes
            );
            continue;
        }
        compared += 1;
        let exact: [(&str, String, String); 8] = [
            ("sent", b.sent.to_string(), c.sent.to_string()),
            (
                "delivered",
                b.delivered.to_string(),
                c.delivered.to_string(),
            ),
            ("events", b.events.to_string(), c.events.to_string()),
            (
                "rounds_max",
                b.rounds_max.to_string(),
                c.rounds_max.to_string(),
            ),
            (
                "trace_digest",
                b.trace_digest.clone(),
                c.trace_digest.clone(),
            ),
            ("proper", b.proper.to_string(), c.proper.to_string()),
            ("returned", b.returned.to_string(), c.returned.to_string()),
            (
                "wire_bytes",
                b.wire_bytes.to_string(),
                c.wire_bytes.to_string(),
            ),
        ];
        for (field, bv, cv) in &exact {
            if bv != cv {
                failures.push(format!(
                    "netsim n={} {} {}: {field} {bv} -> {cv} (determinism break!)",
                    b.n, b.plan, b.codec
                ));
            }
        }
        if b.events >= 100_000 && c.events_per_sec * 100 < b.events_per_sec * (100 - max_drop) {
            failures.push(format!(
                "netsim n={} {} {}: throughput {} -> {} events/s (>{}% drop)",
                b.n, b.plan, b.codec, b.events_per_sec, c.events_per_sec, max_drop
            ));
        }
        println!(
            "ok: netsim n={} {} {}: {} events, {} -> {} events/s, {} wire bytes",
            b.n, b.plan, b.codec, c.events, b.events_per_sec, c.events_per_sec, c.wire_bytes
        );
    }
    for c in &current {
        if !baseline.iter().any(|b| net_key(b) == net_key(c)) {
            println!(
                "new row (no baseline): {} / {} n={} {} {}",
                c.workload, c.alg, c.n, c.plan, c.codec
            );
        }
    }
    if compared == 0 {
        eprintln!(
            "bench_guard: no comparable netsim rows — baseline and current were \
             generated at different scales?"
        );
        std::process::exit(2);
    }
    if failures.is_empty() {
        println!("bench_guard: {compared} net rows compared, no regression");
    } else {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
