//! **E14 — the message-passing substrate (`ftcolor-net`).** Throughput
//! and fault-tolerance of the discrete-event network simulator: the same
//! registry algorithms, executed as nodes exchanging JSON-framed
//! `write`/`snapshot_req`/`snapshot_resp` messages on the ring, under a
//! seeded fault plan. Measured here:
//!
//! * messages/sec and events/sec of the simulator at n ∈ {100, 1k, 10k}
//!   (the Criterion group `e14_net` times the same workloads);
//! * the coloring stays proper and every correct process returns under
//!   clean, lossy, and crash plans — the network layer adds liveness
//!   machinery (retransmits, freshness merge), never new behaviors.

use ftcolor_core::FastFiveColoringPatched;
use ftcolor_model::{inputs, Topology};
use ftcolor_net::{run_net, FaultPlan, NetConfig};
use serde::Serialize;
use std::time::Instant;

/// One (n, fault plan) measurement of the network substrate.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size.
    pub n: usize,
    /// Fault-plan label (`clean`, `lossy-10%`, `1-crash`).
    pub plan: &'static str,
    /// Messages sent (including retransmissions and duplicates).
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages lost to link faults or partitions.
    pub dropped: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Maximum rounds committed by any process.
    pub rounds_max: u64,
    /// Logical time at which the run stopped.
    pub logical_time: u64,
    /// Wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Messages per wall-clock second.
    pub msgs_per_sec: f64,
    /// Simulator events per wall-clock second.
    pub events_per_sec: f64,
    /// The output is a proper partial coloring.
    pub proper: bool,
    /// Every non-crashed process returned.
    pub returned: bool,
}

fn plans(n: usize, seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("clean", FaultPlan::clean()),
        ("lossy-10%", FaultPlan::lossy(0.10)),
        (
            "1-crash",
            FaultPlan::default().with_crash((seed as usize) % n, 3),
        ),
    ]
}

/// Runs Algorithm 3 (patched) on the network substrate across sizes and
/// fault plans, reporting simulator throughput and outcome quality.
pub fn run(sizes: &[usize], seed: u64) -> Vec<Row> {
    let alg = FastFiveColoringPatched;
    let mut rows = Vec::new();
    for &n in sizes {
        let topo = Topology::cycle(n).expect("n >= 3");
        let xs = inputs::staircase_poly(n);
        for (label, plan) in plans(n, seed) {
            let cfg = NetConfig::new(seed);
            let t0 = Instant::now();
            let report = run_net(&alg, &topo, xs.clone(), &plan, &cfg);
            let wall = t0.elapsed().as_secs_f64();
            rows.push(Row {
                n,
                plan: label,
                sent: report.stats.sent,
                delivered: report.stats.delivered,
                dropped: report.stats.dropped + report.stats.partition_dropped,
                events: report.stats.events_processed,
                rounds_max: report.rounds.iter().copied().max().unwrap_or(0),
                logical_time: report.time,
                wall_ms: wall * 1e3,
                msgs_per_sec: report.stats.sent as f64 / wall.max(1e-9),
                events_per_sec: report.stats.events_processed as f64 / wall.max(1e-9),
                proper: topo.is_proper_partial_coloring(&report.outputs),
                returned: {
                    use ftcolor_model::SubstrateReport;
                    report.all_correct_returned()
                },
            });
        }
    }
    rows
}

/// Renders the E14 table.
pub fn table(rows: &[Row]) -> String {
    crate::common::render_table(
        "E14 — message-passing substrate: simulator throughput and outcome \
         quality under seeded fault plans (Algorithm 3 patched)",
        &[
            "n", "plan", "sent", "dropped", "events", "rounds", "msgs/s", "events/s", "proper",
            "returned",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.plan.to_string(),
                    r.sent.to_string(),
                    r.dropped.to_string(),
                    r.events.to_string(),
                    r.rounds_max.to_string(),
                    format!("{:.0}", r.msgs_per_sec),
                    format!("{:.0}", r.events_per_sec),
                    r.proper.to_string(),
                    r.returned.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_runs_stay_proper_and_live() {
        for r in run(&[16, 48], 5) {
            assert!(r.proper, "{r:?}");
            assert!(r.returned, "{r:?}");
            assert!(r.sent > 0 && r.events > 0, "{r:?}");
            if r.plan == "clean" {
                assert_eq!(r.dropped, 0, "{r:?}");
            }
        }
    }
}
