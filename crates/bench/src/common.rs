//! Shared plumbing for the experiment drivers: schedule construction by
//! name, run helpers, and table rendering.

use ftcolor_model::prelude::*;
use ftcolor_model::{Algorithm, ModelError};
use serde::Serialize;

/// Named schedule families used across experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SchedKind {
    /// Everyone at every step (lock-step).
    Sync,
    /// One process per step in id order.
    RoundRobin,
    /// Seeded random subsets (p = 0.5).
    Random,
    /// Run processes to completion one at a time.
    Solo,
    /// A sweeping window of width 3, stride 2.
    Wave,
}

impl SchedKind {
    /// All schedule families.
    pub const ALL: [SchedKind; 5] = [
        SchedKind::Sync,
        SchedKind::RoundRobin,
        SchedKind::Random,
        SchedKind::Solo,
        SchedKind::Wave,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            SchedKind::Sync => "sync",
            SchedKind::RoundRobin => "round-robin",
            SchedKind::Random => "random",
            SchedKind::Solo => "solo",
            SchedKind::Wave => "wave",
        }
    }

    /// Builds the schedule for `n` processes with `seed`.
    pub fn build(&self, n: usize, seed: u64) -> Box<dyn Schedule> {
        match self {
            SchedKind::Sync => Box::new(Synchronous::new()),
            SchedKind::RoundRobin => Box::new(RoundRobin::new()),
            SchedKind::Random => Box::new(RandomSubset::new(seed, 0.5)),
            SchedKind::Solo => Box::new(SoloRunner::ascending(n)),
            SchedKind::Wave => Box::new(Wave::new(n, 3, 2)),
        }
    }
}

/// Runs an algorithm on the cycle under a named schedule.
///
/// # Errors
///
/// Propagates [`ModelError`] (including non-termination within fuel).
pub fn run_cycle<A: Algorithm<Input = u64>>(
    alg: &A,
    ids: &[u64],
    kind: SchedKind,
    seed: u64,
    fuel: u64,
) -> Result<(Topology, ExecutionReport<A::Output>), ModelError> {
    let topo = Topology::cycle(ids.len())?;
    let mut exec = Execution::new(alg, &topo, ids.to_vec());
    let report = exec.run(kind.build(ids.len(), seed), fuel)?;
    Ok((topo, report))
}

/// Renders rows as a fixed-width text table (header + separator + rows).
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let head: Vec<String> = header
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    out.push_str(&fmt_row(&head));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// `true` when every report output is within `0..palette` (colors given
/// by `index`) and the partial coloring is proper.
pub fn coloring_ok<O: Clone + PartialEq>(
    topo: &Topology,
    report: &ExecutionReport<O>,
    index: impl Fn(&O) -> u64,
    palette: u64,
) -> bool {
    topo.is_proper_partial_coloring(&report.outputs)
        && report.outputs.iter().flatten().all(|o| index(o) < palette)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcolor_core::FiveColoring;

    #[test]
    fn schedules_build_and_run() {
        for kind in SchedKind::ALL {
            let ids = [5, 1, 9, 3, 7];
            let (topo, report) = run_cycle(&FiveColoring, &ids, kind, 3, 100_000).unwrap();
            assert!(report.all_returned(), "{}", kind.label());
            assert!(coloring_ok(&topo, &report, |c| *c, 5), "{}", kind.label());
        }
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "demo",
            &["n", "value"],
            &[
                vec!["3".into(), "10".into()],
                vec!["100".into(), "7".into()],
            ],
        );
        assert!(t.contains("## demo"));
        assert!(t.contains("  3"));
        assert!(t.contains("100"));
    }
}
