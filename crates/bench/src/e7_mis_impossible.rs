//! **E7 — Property 2.1.** MIS is not wait-free solvable on the
//! asynchronous cycle. We cannot run an impossibility, but we can run
//! its observable consequence: every natural candidate algorithm,
//! correct in the synchronous failure-free world, is broken here — the
//! model checker exhibits a safety violation or a starvation cycle for
//! each, and the strong-symmetry-breaking reduction of the paper's
//! proof maps the failures onto SSB, the problem whose impossibility
//! drives Property 2.1.

use ftcolor_checker::ssb::{ssb_outputs, ssb_violation};
use ftcolor_checker::ParallelModelChecker;
use ftcolor_core::mis::{mis_violation, EagerMis, ImpatientMis, LocalMaxMis, MisOutput};
use ftcolor_model::prelude::*;
use serde::Serialize;

/// One candidate × instance verdict.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Candidate label.
    pub candidate: &'static str,
    /// Instance label.
    pub instance: String,
    /// Reachable configurations explored.
    pub configs: usize,
    /// Description of the safety violation, if found.
    pub safety_violation: Option<String>,
    /// Whether a starvation (livelock) cycle exists.
    pub livelock: bool,
    /// Whether the candidate failed in at least one way (the Property
    /// 2.1 prediction: this must be `true` for every candidate).
    pub fails: bool,
}

fn check<A>(candidate: &'static str, alg: &A, ids: Vec<u64>, jobs: usize) -> Row
where
    A: Algorithm<Input = u64, Output = MisOutput> + Sync,
    A::State: Eq + std::hash::Hash + Send + Sync,
    A::Reg: Eq + std::hash::Hash + Send + Sync,
{
    let topo = Topology::cycle(ids.len()).unwrap();
    let label = format!("C{} ids={ids:?}", ids.len());
    let mc = ParallelModelChecker::new(alg, &topo, ids)
        .with_max_configs(2_000_000)
        .with_jobs(jobs);
    let o = mc.explore(mis_violation).unwrap();
    Row {
        candidate,
        instance: label,
        configs: o.configs,
        safety_violation: o.safety_violation.as_ref().map(|v| v.description.clone()),
        livelock: o.livelock.is_some(),
        fails: o.safety_violation.is_some() || o.livelock.is_some(),
    }
}

/// Model-checks all three candidates on C3 and C4 with `jobs` worker
/// threads (`0` = all CPUs); the verdicts are identical for every
/// thread count.
pub fn run(jobs: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for ids in [vec![1u64, 2, 3], vec![2, 7, 4, 9]] {
        rows.push(check("LocalMaxMis", &LocalMaxMis, ids.clone(), jobs));
        rows.push(check("EagerMis", &EagerMis, ids.clone(), jobs));
        rows.push(check("ImpatientMis", &ImpatientMis, ids, jobs));
    }
    rows
}

/// The SSB side of the reduction: run each candidate under a starvation
/// schedule and report the violated SSB condition (per the Property 2.1
/// proof, a correct MIS algorithm would make these executions satisfy
/// SSB — none does).
#[derive(Debug, Clone, Serialize)]
pub struct SsbRow {
    /// Candidate label.
    pub candidate: &'static str,
    /// The violated SSB condition.
    pub violation: String,
}

/// Runs the SSB demonstrations.
pub fn run_ssb() -> Vec<SsbRow> {
    let topo = Topology::cycle(3).unwrap();
    let mut rows = Vec::new();

    // LocalMaxMis: max activated once then crashed; others starve.
    let mut exec = Execution::new(&LocalMaxMis, &topo, vec![1, 2, 3]);
    exec.step_with(&ActivationSet::solo(ProcessId(2)));
    for _ in 0..64 {
        exec.step_with(&ActivationSet::of([ProcessId(0), ProcessId(1)]));
    }
    rows.push(SsbRow {
        candidate: "LocalMaxMis",
        violation: ssb_violation(&ssb_outputs(exec.outputs())).unwrap_or_default(),
    });

    // ImpatientMis: verdicts are never published (the write precedes the
    // decision), so sequential solo wake-ups make *everyone* return In —
    // all terminated, nobody output 0: SSB condition 1 violated (and MIS
    // condition 2, spectacularly: the whole triangle is "independent").
    let mut exec2 = Execution::new(&ImpatientMis, &topo, vec![1, 2, 3]);
    exec2.step_with(&ActivationSet::solo(ProcessId(0)));
    exec2.step_with(&ActivationSet::solo(ProcessId(1)));
    exec2.step_with(&ActivationSet::solo(ProcessId(2)));
    rows.push(SsbRow {
        candidate: "ImpatientMis",
        violation: ssb_violation(&ssb_outputs(exec2.outputs())).unwrap_or_default(),
    });

    // EagerMis: the adjacent In/In execution breaks MIS safety, which
    // the SSB reduction does not even need — report the In/In itself.
    let topo4 = Topology::cycle(4).unwrap();
    let mut exec3 = Execution::new(&EagerMis, &topo4, vec![5, 9, 2, 1]);
    for set in FixedSequence::from_indices([vec![0], vec![1], vec![0], vec![1]]).sets() {
        exec3.step_with(set);
    }
    rows.push(SsbRow {
        candidate: "EagerMis",
        violation: mis_violation(&topo4, exec3.outputs()).unwrap_or_default(),
    });
    rows
}

/// Renders the E7 tables.
pub fn table(rows: &[Row], ssb: &[SsbRow]) -> String {
    let mut out = crate::common::render_table(
        "E7a (Property 2.1) — every MIS candidate fails under exhaustive search",
        &[
            "candidate",
            "instance",
            "configs",
            "safety violation",
            "livelock",
            "fails",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.candidate.to_string(),
                    r.instance.clone(),
                    r.configs.to_string(),
                    r.safety_violation.clone().unwrap_or_else(|| "-".into()),
                    if r.livelock {
                        "FOUND".into()
                    } else {
                        "none".into()
                    },
                    r.fails.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    out.push('\n');
    out.push_str(&crate::common::render_table(
        "E7b — strong-symmetry-breaking reduction: witnessed violations",
        &["candidate", "violation"],
        &ssb.iter()
            .map(|r| vec![r.candidate.to_string(), r.violation.clone()])
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_candidate_fails() {
        let rows = run(0);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.fails, "Property 2.1 predicts failure: {r:?}");
        }
    }

    #[test]
    fn ssb_witnesses_are_nonempty() {
        for r in run_ssb() {
            assert!(!r.violation.is_empty(), "{r:?}");
        }
    }
}
