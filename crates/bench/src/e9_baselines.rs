//! **E9 — baselines.** The two classic algorithms the paper measures
//! itself against:
//!
//! * synchronous Cole–Vishkin 3-coloring of the oriented ring
//!   (`½ log* n + O(1)` rounds, zero fault tolerance) vs Algorithm 3
//!   under the same synchronous schedule — the "price of wait-freedom"
//!   is a constant factor in rounds plus two extra colors;
//! * rank-based `(2n−1)`-renaming on the clique — the shared-memory
//!   ancestor of Algorithm 2, and the source of the 5-color lower bound
//!   on `C3` (Property 2.3).

use crate::common::{run_cycle, SchedKind};
use ftcolor_core::renaming::RankRenaming;
use ftcolor_core::sync_local::{ColeVishkinThree, CvInput};
use ftcolor_core::FastFiveColoring;
use ftcolor_model::inputs;
use ftcolor_model::logstar::log_star_u64;
use ftcolor_model::prelude::*;
use serde::Serialize;

/// One row of the CV-vs-Algorithm-3 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct CvRow {
    /// Ring size.
    pub n: usize,
    /// `log* n`.
    pub log_star: u32,
    /// Synchronous CV rounds (3 colors, no fault tolerance).
    pub cv_rounds: u64,
    /// Algorithm 3 rounds under the same synchronous schedule
    /// (5 colors, wait-free).
    pub alg3_rounds: u64,
    /// Ratio ×1000.
    pub ratio_milli: u64,
}

/// Runs the round-count comparison on staircase-poly identifiers.
pub fn run_cv(sizes: &[usize]) -> Vec<CvRow> {
    sizes
        .iter()
        .map(|&n| {
            let ids = inputs::staircase_poly(n);
            let alg = ColeVishkinThree::for_max_id(*ids.iter().max().unwrap());
            let topo = Topology::cycle(n).unwrap();
            let cv_inputs: Vec<CvInput> = ids
                .iter()
                .enumerate()
                .map(|(pos, &x)| CvInput { x, pos, n })
                .collect();
            let mut exec = Execution::new(&alg, &topo, cv_inputs);
            let cv_rounds = exec
                .run(Synchronous::new(), 1_000_000)
                .expect("failure-free sync")
                .max_activations();

            let (_, report) = run_cycle(&FastFiveColoring, &ids, SchedKind::Sync, 0, 1_000_000)
                .expect("wait-free");
            let alg3_rounds = report.max_activations();
            CvRow {
                n,
                log_star: log_star_u64(n as u64),
                cv_rounds,
                alg3_rounds,
                ratio_milli: alg3_rounds * 1000 / cv_rounds.max(1),
            }
        })
        .collect()
}

/// One row of the renaming table.
#[derive(Debug, Clone, Serialize)]
pub struct RenameRow {
    /// Process count.
    pub n: usize,
    /// The `2n − 1` name-space bound (names `0..=2n−2`).
    pub name_space: u64,
    /// Largest name observed across schedules and seeds.
    pub max_name: u64,
    /// Worst-case activations observed.
    pub max_activations: u64,
    /// Whether all executions produced distinct, in-range names.
    pub ok: bool,
}

/// Runs renaming across schedules/seeds per clique size.
pub fn run_renaming(sizes: &[usize], seeds: u64) -> Vec<RenameRow> {
    sizes
        .iter()
        .map(|&n| {
            let topo = Topology::clique(n).unwrap();
            let mut max_name = 0u64;
            let mut max_acts = 0u64;
            let mut ok = true;
            for seed in 0..seeds {
                let ids = inputs::random_unique(n, 100_000, seed);
                for sched in [
                    Box::new(Synchronous::new()) as Box<dyn Schedule>,
                    Box::new(RandomSubset::new(seed + 1, 0.5)),
                    Box::new(SoloRunner::ascending(n)),
                ] {
                    let mut exec = Execution::new(&RankRenaming, &topo, ids.clone());
                    let report = exec.run(sched, 2_000_000).expect("wait-free");
                    let names: Vec<u64> = report.outputs.iter().flatten().copied().collect();
                    let mut sorted = names.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    ok &= report.all_returned() && sorted.len() == names.len();
                    max_name = max_name.max(names.iter().copied().max().unwrap_or(0));
                    max_acts = max_acts.max(report.max_activations());
                }
            }
            ok &= max_name <= 2 * n as u64 - 2;
            RenameRow {
                n,
                name_space: 2 * n as u64 - 1,
                max_name,
                max_activations: max_acts,
                ok,
            }
        })
        .collect()
}

/// Renders both E9 tables.
pub fn table(cv: &[CvRow], rn: &[RenameRow]) -> String {
    let mut out = crate::common::render_table(
        "E9a — synchronous Cole–Vishkin (3 colors, fragile) vs Algorithm 3 (5 colors, wait-free)",
        &["n", "log*", "CV rounds", "Alg3 rounds", "ratio"],
        &cv.iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.log_star.to_string(),
                    r.cv_rounds.to_string(),
                    r.alg3_rounds.to_string(),
                    format!("{:.2}", r.ratio_milli as f64 / 1000.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    out.push('\n');
    out.push_str(&crate::common::render_table(
        "E9b — rank-based renaming on the clique: names fit in 2n−1",
        &["n", "name space", "max name", "max acts", "ok"],
        &rn.iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.name_space.to_string(),
                    r.max_name.to_string(),
                    r.max_activations.to_string(),
                    r.ok.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cv_and_alg3_are_both_near_constant() {
        let rows = run_cv(&[8, 64, 512]);
        for r in &rows {
            assert!(r.cv_rounds <= 15, "{r:?}");
            assert!(r.alg3_rounds <= 60, "{r:?}");
        }
    }

    #[test]
    fn renaming_fits_the_name_space() {
        let rows = run_renaming(&[2, 3, 5, 7], 3);
        for r in &rows {
            assert!(r.ok, "{r:?}");
        }
    }
}
