//! **E6 — Property 2.3 & exhaustive soundness.** Exhaustive exploration
//! of *every* schedule (hence every crash pattern) on small cycles:
//!
//! * safety (properness + palette) holds at every reachable
//!   configuration for Algorithms 1–3;
//! * palette attainment: across executions, Algorithm 2 genuinely uses
//!   colors up to 4 — consistent with Property 2.3's lower bound of 5
//!   colors (on `C3` the model *is* 3-process shared memory, where
//!   renaming needs `2·3−1 = 5` names);
//! * termination: Algorithm 1's configuration graph is cycle-free
//!   (wait-free, crashes included), while Algorithms 2/3 exhibit the
//!   documented crash livelock (DESIGN.md, "Reproduction findings").

use ftcolor_checker::modelcheck::ModelCheckOutcome;
use ftcolor_checker::ParallelModelChecker;
use ftcolor_core::{FastFiveColoring, FiveColoring, FiveColoringPatched, SixColoring};
use ftcolor_model::Topology;
use serde::Serialize;

/// One algorithm × instance exploration result.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Instance label (topology + ids).
    pub instance: String,
    /// Reachable configurations.
    pub configs: usize,
    /// Transitions explored.
    pub edges: usize,
    /// Whether any reachable configuration violates safety.
    pub safety_ok: bool,
    /// Whether a livelock cycle exists in the configuration graph.
    pub livelock: bool,
    /// Number of distinct colors output across all executions.
    pub distinct_colors: usize,
    /// Whether exploration completed (not truncated).
    pub complete: bool,
    /// Exact worst-case round complexity over all schedules (computed
    /// for acyclic configuration graphs — i.e. Algorithm 1; `None` when
    /// cyclic/truncated/not computed).
    pub exact_worst: Option<u64>,
}

fn coloring_safety_u64(topo: &Topology, outputs: &[Option<u64>]) -> Option<String> {
    if let Some((a, b)) = topo.first_conflict(outputs) {
        return Some(format!("conflict on edge {a}-{b}"));
    }
    outputs
        .iter()
        .flatten()
        .find(|&&c| c >= 5)
        .map(|c| format!("color {c} outside palette"))
}

fn row_from<O: std::fmt::Debug>(
    algorithm: &'static str,
    instance: String,
    o: &ModelCheckOutcome<O>,
) -> Row {
    Row {
        algorithm,
        instance,
        configs: o.configs,
        edges: o.edges,
        safety_ok: o.safety_violation.is_none(),
        livelock: o.livelock.is_some(),
        distinct_colors: o.outputs_seen.len(),
        complete: !o.truncated,
        exact_worst: None,
    }
}

/// Runs the exhaustive explorations. `max_configs` caps each instance;
/// `jobs` is the worker-thread count (`0` = all CPUs). The parallel
/// checker is bit-identical to the sequential one, so every cell of the
/// E6 table is independent of `jobs` — see `benches/e6_modelcheck.rs`
/// for the thread-scaling measurement.
pub fn run(max_configs: usize, jobs: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    let instances: Vec<(String, Vec<u64>)> = vec![
        ("C3 ids=[0,1,2]".into(), vec![0, 1, 2]),
        ("C3 ids=[5,11,7]".into(), vec![5, 11, 7]),
        ("C4 ids=[0,1,2,3]".into(), vec![0, 1, 2, 3]),
        ("C4 ids=[3,0,2,5]".into(), vec![3, 0, 2, 5]),
    ];
    for (label, ids) in &instances {
        let topo = Topology::cycle(ids.len()).unwrap();

        let mc = ParallelModelChecker::new(&SixColoring, &topo, ids.clone())
            .with_max_configs(max_configs)
            .with_jobs(jobs);
        let o = mc
            .explore(|topo, outputs| {
                if let Some((a, b)) = topo.first_conflict(outputs) {
                    return Some(format!("conflict on edge {a}-{b}"));
                }
                outputs
                    .iter()
                    .flatten()
                    .find(|c| c.weight() > 2)
                    .map(|c| format!("color {c} outside palette"))
            })
            .unwrap();
        let mut row = row_from("Alg1 (6-coloring)", label.clone(), &o);
        // Algorithm 1's configuration graph is acyclic: compute the
        // exact worst-case round complexity over all schedules.
        row.exact_worst = ParallelModelChecker::new(&SixColoring, &topo, ids.clone())
            .with_max_configs(max_configs)
            .with_jobs(jobs)
            .exact_worst_case()
            .unwrap();
        rows.push(row);

        let mc = ParallelModelChecker::new(&FiveColoring, &topo, ids.clone())
            .with_max_configs(max_configs)
            .with_jobs(jobs);
        let o = mc.explore(coloring_safety_u64).unwrap();
        rows.push(row_from("Alg2 (5-coloring)", label.clone(), &o));

        let mc = ParallelModelChecker::new(&FastFiveColoring, &topo, ids.clone())
            .with_max_configs(max_configs)
            .with_jobs(jobs);
        let o = mc.explore(coloring_safety_u64).unwrap();
        rows.push(row_from("Alg3 (fast 5-coloring)", label.clone(), &o));

        // The candidate repair: bounded-depth search (its counter makes
        // the space infinite; a finite search can refute but not fully
        // certify — no cycle can exist by the monotone-counter argument,
        // so "livelock: none" here is expected and `complete: false`
        // reflects the truncation honestly).
        let patched_cap = max_configs.min(400_000);
        let mc = ParallelModelChecker::new(&FiveColoringPatched, &topo, ids.clone())
            .with_max_configs(patched_cap)
            .with_jobs(jobs);
        let o = mc.explore(coloring_safety_u64).unwrap();
        rows.push(row_from("Alg2-patched", label.clone(), &o));
    }
    rows
}

/// Renders the E6 table.
pub fn table(rows: &[Row]) -> String {
    crate::common::render_table(
        "E6 (Property 2.3 + exhaustive soundness) — all schedules, all crash patterns",
        &[
            "algorithm",
            "instance",
            "configs",
            "edges",
            "safety",
            "livelock",
            "colors seen",
            "complete",
            "exact worst",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.to_string(),
                    r.instance.clone(),
                    r.configs.to_string(),
                    r.edges.to_string(),
                    if r.safety_ok {
                        "ok".into()
                    } else {
                        "VIOLATED".into()
                    },
                    if r.livelock {
                        "FOUND".into()
                    } else {
                        "none".into()
                    },
                    r.distinct_colors.to_string(),
                    r.complete.to_string(),
                    r.exact_worst.map_or("-".into(), |w| w.to_string()),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_small_instances() {
        let rows = run(3_000_000, 0);
        for r in &rows {
            assert!(r.safety_ok, "safety must hold everywhere: {r:?}");
        }
        // Algorithm 1 on C3 must be livelock-free if complete.
        for r in rows
            .iter()
            .filter(|r| r.algorithm.starts_with("Alg1") && r.instance.starts_with("C3"))
        {
            assert!(r.complete, "{r:?}");
            assert!(!r.livelock, "Algorithm 1 must be wait-free: {r:?}");
        }
        // The candidate repair: no livelock can be found (none exists, by
        // the monotone-counter argument).
        for r in rows.iter().filter(|r| r.algorithm == "Alg2-patched") {
            assert!(!r.livelock, "{r:?}");
        }
    }
}
