//! **E6 — Property 2.3 & exhaustive soundness.** Exhaustive exploration
//! of *every* schedule (hence every crash pattern) on small cycles:
//!
//! * safety (properness + palette) holds at every reachable
//!   configuration for Algorithms 1–3;
//! * palette attainment: across executions, Algorithm 2 genuinely uses
//!   colors up to 4 — consistent with Property 2.3's lower bound of 5
//!   colors (on `C3` the model *is* 3-process shared memory, where
//!   renaming needs `2·3−1 = 5` names);
//! * termination: Algorithm 1's configuration graph is cycle-free
//!   (wait-free, crashes included), while Algorithms 2/3 exhibit the
//!   documented crash livelock (DESIGN.md, "Reproduction findings").
//!
//! Each row also reports the exploration's throughput (configurations
//! per second) and peak visited-set footprint from
//! [`ftcolor_checker::stats::ExploreStats`], and every instance gets a
//! `--symmetry` twin: the same exploration in the orbit quotient under
//! the dihedral group of the cycle. Verdict columns must agree between
//! a full row and its twin; the `configs` column shows how much (or,
//! for asymmetric identifier assignments, how little) the quotient
//! collapses. The rotation-invariant instances (`C4 ids=[0,1,0,1]`,
//! `C6 ids=[0,1,2,0,1,2]`) are the ones where orbits genuinely merge.
//!
//! The largest committed instance (`C5`) additionally gets `--por`
//! twins: the same exploration under the ample-set partial-order
//! reduction, with and without `--symmetry`. `run` asserts in-line that
//! every reduced row reproduces its unreduced twin's verdicts (the
//! differential suite in `tests/por_soundness.rs` pins the stronger
//! bit-identity property); the `configs` column shows what the
//! canonical-component staircase saves.

use ftcolor_checker::modelcheck::ModelCheckOutcome;
use ftcolor_checker::ParallelModelChecker;
use ftcolor_core::{FastFiveColoring, FiveColoring, FiveColoringPatched, SixColoring};
use ftcolor_model::Topology;
use serde::{Deserialize, Serialize};

/// One algorithm × instance exploration result.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Instance label (topology + ids).
    pub instance: String,
    /// Ring size.
    pub n: usize,
    /// Configuration cap the exploration ran under.
    pub bound: usize,
    /// Whether the exploration ran in the orbit quotient (`--symmetry`).
    pub symmetry: bool,
    /// Whether the exploration ran under partial-order reduction
    /// (`--por`).
    pub por: bool,
    /// Reachable configurations (orbit representatives when `symmetry`).
    pub configs: usize,
    /// Transitions explored.
    pub edges: usize,
    /// Whether any reachable configuration violates safety.
    pub safety_ok: bool,
    /// Whether a livelock cycle exists in the configuration graph.
    pub livelock: bool,
    /// Number of distinct colors output across all executions.
    pub distinct_colors: usize,
    /// Whether exploration completed (not truncated).
    pub complete: bool,
    /// Exact worst-case round complexity over all schedules (computed
    /// for acyclic configuration graphs — i.e. Algorithm 1; `None` when
    /// cyclic/truncated/not computed).
    pub exact_worst: Option<u64>,
    /// Exploration throughput in configurations per second.
    pub configs_per_sec: u64,
    /// Peak visited-set footprint in bytes (keys + packed buffers).
    pub peak_visited_bytes: u64,
}

fn coloring_safety_u64(topo: &Topology, outputs: &[Option<u64>]) -> Option<String> {
    if let Some((a, b)) = topo.first_conflict(outputs) {
        return Some(format!("conflict on edge {a}-{b}"));
    }
    outputs
        .iter()
        .flatten()
        .find(|&&c| c >= 5)
        .map(|c| format!("color {c} outside palette"))
}

fn row_from<O: std::fmt::Debug>(
    algorithm: &'static str,
    instance: String,
    n: usize,
    bound: usize,
    symmetry: bool,
    por: bool,
    o: &ModelCheckOutcome<O>,
) -> Row {
    Row {
        algorithm,
        instance,
        n,
        bound,
        symmetry,
        por,
        configs: o.configs,
        edges: o.edges,
        safety_ok: o.safety_violation.is_none(),
        livelock: o.livelock.is_some(),
        distinct_colors: o.outputs_seen.len(),
        complete: !o.truncated,
        exact_worst: None,
        configs_per_sec: o.stats.configs_per_sec,
        peak_visited_bytes: o.stats.peak_visited_bytes,
    }
}

/// Runs the exhaustive explorations. `max_configs` caps each instance;
/// `jobs` is the worker-thread count (`0` = all CPUs). The parallel
/// checker is bit-identical to the sequential one, so every cell of the
/// E6 table is independent of `jobs` — see `benches/e6_modelcheck.rs`
/// for the thread-scaling measurement.
pub fn run(max_configs: usize, jobs: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    let instances: Vec<(String, Vec<u64>)> = vec![
        ("C3 ids=[0,1,2]".into(), vec![0, 1, 2]),
        ("C3 ids=[5,11,7]".into(), vec![5, 11, 7]),
        ("C4 ids=[0,1,2,3]".into(), vec![0, 1, 2, 3]),
        ("C4 ids=[3,0,2,5]".into(), vec![3, 0, 2, 5]),
        ("C5 ids=[0,1,2,3,4]".into(), vec![0, 1, 2, 3, 4]),
    ];
    for (label, ids) in &instances {
        let n = ids.len();
        let topo = Topology::cycle(n).unwrap();
        for symmetry in [false, true] {
            let mc = ParallelModelChecker::new(&SixColoring, &topo, ids.clone())
                .with_max_configs(max_configs)
                .with_jobs(jobs)
                .with_symmetry(symmetry);
            let o = mc
                .explore(|topo, outputs| {
                    if let Some((a, b)) = topo.first_conflict(outputs) {
                        return Some(format!("conflict on edge {a}-{b}"));
                    }
                    outputs
                        .iter()
                        .flatten()
                        .find(|c| c.weight() > 2)
                        .map(|c| format!("color {c} outside palette"))
                })
                .unwrap();
            let mut row = row_from(
                "Alg1 (6-coloring)",
                label.clone(),
                n,
                max_configs,
                symmetry,
                false,
                &o,
            );
            // Algorithm 1's configuration graph is acyclic: compute the
            // exact worst-case round complexity over all schedules. A
            // truncated run reports `None` but still surfaces the work
            // it did through its stats, rather than returning silently.
            let (w, _dp_stats) = ParallelModelChecker::new(&SixColoring, &topo, ids.clone())
                .with_max_configs(max_configs)
                .with_jobs(jobs)
                .with_symmetry(symmetry)
                .exact_worst_case_with_stats()
                .unwrap();
            row.exact_worst = w;
            rows.push(row);

            let mc = ParallelModelChecker::new(&FiveColoring, &topo, ids.clone())
                .with_max_configs(max_configs)
                .with_jobs(jobs)
                .with_symmetry(symmetry);
            let o = mc.explore(coloring_safety_u64).unwrap();
            rows.push(row_from(
                "Alg2 (5-coloring)",
                label.clone(),
                n,
                max_configs,
                symmetry,
                false,
                &o,
            ));

            let mc = ParallelModelChecker::new(&FastFiveColoring, &topo, ids.clone())
                .with_max_configs(max_configs)
                .with_jobs(jobs)
                .with_symmetry(symmetry);
            let o = mc.explore(coloring_safety_u64).unwrap();
            rows.push(row_from(
                "Alg3 (fast 5-coloring)",
                label.clone(),
                n,
                max_configs,
                symmetry,
                false,
                &o,
            ));

            // The candidate repair: bounded-depth search (its counter makes
            // the space infinite; a finite search can refute but not fully
            // certify — no cycle can exist by the monotone-counter argument,
            // so "livelock: none" here is expected and `complete: false`
            // reflects the truncation honestly).
            let patched_cap = max_configs.min(400_000);
            let mc = ParallelModelChecker::new(&FiveColoringPatched, &topo, ids.clone())
                .with_max_configs(patched_cap)
                .with_jobs(jobs)
                .with_symmetry(symmetry);
            let o = mc.explore(coloring_safety_u64).unwrap();
            rows.push(row_from(
                "Alg2-patched",
                label.clone(),
                n,
                patched_cap,
                symmetry,
                false,
                &o,
            ));
        }
    }

    // Rotation-invariant identifier assignments: the quotient genuinely
    // collapses orbits here (ids repeat with the rotation period, so
    // distinct reachable configurations fall into common orbits). The
    // unpatched Algorithm 2 keeps its livelock verdict through the
    // quotient — the soundness property tests/symmetry_soundness.rs pins.
    let symmetric_instances: Vec<(String, Vec<u64>)> = vec![
        ("C4 ids=[0,1,0,1]".into(), vec![0, 1, 0, 1]),
        ("C6 ids=[0,1,2,0,1,2]".into(), vec![0, 1, 2, 0, 1, 2]),
    ];
    for (label, ids) in &symmetric_instances {
        let n = ids.len();
        let topo = Topology::cycle(n).unwrap();
        let cap = max_configs.min(400_000);
        for symmetry in [false, true] {
            let mc = ParallelModelChecker::new(&FiveColoring, &topo, ids.clone())
                .with_max_configs(cap)
                .with_jobs(jobs)
                .with_symmetry(symmetry);
            let o = mc.explore(coloring_safety_u64).unwrap();
            rows.push(row_from(
                "Alg2 (5-coloring)",
                label.clone(),
                n,
                cap,
                symmetry,
                false,
                &o,
            ));
        }
    }

    // Partial-order-reduction twins on the largest committed instance:
    // C5 × {Alg1, Alg2, Alg2-patched} × {plain, --symmetry}, explored
    // under the ample-set staircase. Each reduced row must reproduce
    // its unreduced twin's verdicts — asserted here so the experiments
    // binary itself is a soundness check, not just a stopwatch.
    let por_label = "C5 ids=[0,1,2,3,4]".to_string();
    let por_ids: Vec<u64> = vec![0, 1, 2, 3, 4];
    let por_topo = Topology::cycle(5).unwrap();
    macro_rules! por_twin {
        ($alg:expr, $name:expr, $safety:expr, $cap:expr, $symmetry:expr) => {{
            let o = ParallelModelChecker::new($alg, &por_topo, por_ids.clone())
                .with_max_configs($cap)
                .with_jobs(jobs)
                .with_symmetry($symmetry)
                .with_por(true)
                .explore($safety)
                .unwrap();
            let row = row_from($name, por_label.clone(), 5, $cap, $symmetry, true, &o);
            let twin = rows
                .iter()
                .find(|r| {
                    !r.por
                        && r.algorithm == $name
                        && r.instance == por_label
                        && r.symmetry == $symmetry
                        && r.bound == $cap
                })
                .expect("every POR row has an unreduced twin");
            assert_eq!(
                twin.safety_ok, row.safety_ok,
                "{}: safety verdict must survive the reduction",
                $name
            );
            assert_eq!(
                twin.complete, row.complete,
                "{}: truncation must agree with the unreduced twin",
                $name
            );
            if twin.complete {
                assert_eq!(twin.livelock, row.livelock, "{}: livelock verdict", $name);
                assert!(
                    row.configs <= twin.configs,
                    "{}: the reduction may never be larger ({} vs {})",
                    $name,
                    row.configs,
                    twin.configs
                );
            }
            rows.push(row);
        }};
    }
    for symmetry in [false, true] {
        por_twin!(
            &SixColoring,
            "Alg1 (6-coloring)",
            |topo: &Topology, outputs: &[Option<_>]| {
                if let Some((a, b)) = topo.first_conflict(outputs) {
                    return Some(format!("conflict on edge {a}-{b}"));
                }
                outputs
                    .iter()
                    .flatten()
                    .find(|c| c.weight() > 2)
                    .map(|c| format!("color {c} outside palette"))
            },
            max_configs,
            symmetry
        );
        por_twin!(
            &FiveColoring,
            "Alg2 (5-coloring)",
            coloring_safety_u64,
            max_configs,
            symmetry
        );
        por_twin!(
            &FiveColoringPatched,
            "Alg2-patched",
            coloring_safety_u64,
            max_configs.min(400_000),
            symmetry
        );
    }
    rows
}

/// One row of the committed `BENCH_modelcheck.json` snapshot: algorithm
/// × instance × bound → configuration count and cost. CI regenerates
/// the snapshot (quick mode) and diffs it against the committed
/// baseline with the `bench_guard` binary — configuration counts must
/// match exactly (the checker is deterministic at every thread count),
/// and throughput must not silently regress.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRow {
    /// Algorithm label.
    pub algorithm: String,
    /// Instance label (topology + ids).
    pub instance: String,
    /// Ring size.
    pub n: usize,
    /// Configuration cap the exploration ran under.
    pub bound: usize,
    /// Whether the exploration ran in the orbit quotient.
    pub symmetry: bool,
    /// Whether the exploration ran under partial-order reduction.
    pub por: bool,
    /// Reachable configurations (deterministic for a given bound).
    pub configs: usize,
    /// Exploration throughput in configurations per second.
    pub configs_per_sec: u64,
    /// Peak visited-set footprint in bytes.
    pub peak_visited_bytes: u64,
}

/// Projects the E6 rows onto the machine-readable snapshot format.
pub fn snapshot(rows: &[Row]) -> Vec<BenchRow> {
    rows.iter()
        .map(|r| BenchRow {
            algorithm: r.algorithm.to_string(),
            instance: r.instance.clone(),
            n: r.n,
            bound: r.bound,
            symmetry: r.symmetry,
            por: r.por,
            configs: r.configs,
            configs_per_sec: r.configs_per_sec,
            peak_visited_bytes: r.peak_visited_bytes,
        })
        .collect()
}

/// Renders the E6 table.
pub fn table(rows: &[Row]) -> String {
    crate::common::render_table(
        "E6 (Property 2.3 + exhaustive soundness) — all schedules, all crash patterns",
        &[
            "algorithm",
            "instance",
            "sym",
            "por",
            "configs",
            "edges",
            "safety",
            "livelock",
            "colors seen",
            "complete",
            "exact worst",
            "cfg/s",
            "peak KiB",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.to_string(),
                    r.instance.clone(),
                    if r.symmetry { "yes" } else { "-" }.into(),
                    if r.por { "yes" } else { "-" }.into(),
                    r.configs.to_string(),
                    r.edges.to_string(),
                    if r.safety_ok {
                        "ok".into()
                    } else {
                        "VIOLATED".into()
                    },
                    if r.livelock {
                        "FOUND".into()
                    } else {
                        "none".into()
                    },
                    r.distinct_colors.to_string(),
                    r.complete.to_string(),
                    r.exact_worst.map_or("-".into(), |w| w.to_string()),
                    r.configs_per_sec.to_string(),
                    (r.peak_visited_bytes / 1024).to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_small_instances() {
        // A small cap keeps the debug-mode test fast; the experiments
        // binary runs the same sweep at the real (quick/full) caps.
        let rows = run(60_000, 0);
        for r in &rows {
            assert!(r.safety_ok, "safety must hold everywhere: {r:?}");
        }
        // Algorithm 1 on C3 must be livelock-free if complete.
        for r in rows
            .iter()
            .filter(|r| r.algorithm.starts_with("Alg1") && r.instance.starts_with("C3"))
        {
            assert!(r.complete, "{r:?}");
            assert!(!r.livelock, "Algorithm 1 must be wait-free: {r:?}");
        }
        // The candidate repair: no livelock can be found (none exists, by
        // the monotone-counter argument).
        for r in rows.iter().filter(|r| r.algorithm == "Alg2-patched") {
            assert!(!r.livelock, "{r:?}");
        }
        // Each full row has a symmetry twin. When the full exploration
        // completes, the quotient must complete too (it is never larger)
        // with identical verdicts; under truncation the two modes cover
        // different regions, so only soundness-safe facts are asserted.
        for full in rows.iter().filter(|r| !r.symmetry) {
            let twin = rows
                .iter()
                .find(|r| {
                    r.symmetry
                        && r.por == full.por
                        && r.algorithm == full.algorithm
                        && r.instance == full.instance
                })
                .expect("every row has a symmetry twin");
            assert_eq!(full.safety_ok, twin.safety_ok, "{full:?}");
            if full.complete {
                assert!(twin.complete, "quotient of a complete space: {twin:?}");
                assert_eq!(full.livelock, twin.livelock, "{full:?}");
                // Under POR the quotient is not necessarily smaller:
                // the staircase picks subsets relative to each
                // representative's working ids, so quotient-of-reduced
                // and reduced-of-quotient reach slightly different
                // representative sets (verdicts still agree). The
                // monotonicity claim holds for the unreduced rows.
                if !full.por {
                    assert!(twin.configs <= full.configs, "{full:?} vs {twin:?}");
                }
                assert_eq!(full.exact_worst, twin.exact_worst, "{full:?}");
            }
        }
        // The rotation-invariant instances genuinely collapse.
        for full in rows
            .iter()
            .filter(|r| !r.symmetry && r.instance.contains("[0,1,0,1]"))
        {
            let twin = rows
                .iter()
                .find(|r| r.symmetry && !r.por && r.instance == full.instance)
                .unwrap();
            assert!(
                twin.configs * 2 <= full.configs,
                "expected ≥2x collapse: {} vs {}",
                twin.configs,
                full.configs
            );
        }
        // The snapshot projection is faithful.
        let snap = snapshot(&rows);
        assert_eq!(snap.len(), rows.len());
        assert!(snap.iter().zip(&rows).all(|(s, r)| s.configs == r.configs));
    }
}
