//! **E1 — Theorem 3.1.** Algorithm 1 terminates within `⌊3n/2⌋ + 4`
//! activations, uses the 6-color palette `{(a,b) : a+b ≤ 2}`, and
//! properly colors the terminated subgraph — across input shapes and
//! schedule families.

use crate::common::{coloring_ok, run_cycle, SchedKind};
use ftcolor_checker::invariants::theorem_3_1_bound;
use ftcolor_core::SixColoring;
use ftcolor_model::inputs;
use serde::Serialize;

/// One measurement: a (n, input shape, schedule) cell.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size.
    pub n: usize,
    /// Input shape label.
    pub input: &'static str,
    /// Schedule label.
    pub schedule: &'static str,
    /// Measured worst-case activations over the seeds tried.
    pub max_activations: u64,
    /// The Theorem 3.1 bound `⌊3n/2⌋ + 4`.
    pub bound: u64,
    /// Whether every execution was proper, in-palette, and within bound.
    pub ok: bool,
}

/// A named identifier-assignment generator.
pub type InputShape = (&'static str, fn(usize) -> Vec<u64>);

/// Input generators exercised by E1.
pub fn input_shapes() -> Vec<InputShape> {
    vec![
        ("staircase", inputs::staircase as fn(usize) -> Vec<u64>),
        ("alternating", inputs::alternating),
        ("organ-pipe", inputs::organ_pipe),
        ("random", |n| inputs::random_permutation(n, 0xE1)),
    ]
}

/// Runs the sweep. `sizes` defaults (in the harness) to
/// `[3, 4, 5, 8, 16, 32, 100, 316, 1000]`.
pub fn run(sizes: &[usize], seeds: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        for (input_label, gen) in input_shapes() {
            let ids = gen(n);
            for kind in [SchedKind::Sync, SchedKind::RoundRobin, SchedKind::Random] {
                let mut worst = 0u64;
                let mut ok = true;
                for seed in 0..seeds {
                    let fuel = 400 * n as u64 + 4000;
                    let (topo, report) =
                        run_cycle(&SixColoring, &ids, kind, seed, fuel).expect("wait-free");
                    worst = worst.max(report.max_activations());
                    ok &= report.all_returned()
                        && coloring_ok(&topo, &report, ftcolor_core::PairColor::flat_index, 6)
                        && report.max_activations() <= theorem_3_1_bound(n);
                }
                rows.push(Row {
                    n,
                    input: input_label,
                    schedule: kind.label(),
                    max_activations: worst,
                    bound: theorem_3_1_bound(n),
                    ok,
                });
            }
        }
    }
    rows
}

/// Renders the E1 table.
pub fn table(rows: &[Row]) -> String {
    crate::common::render_table(
        "E1 (Theorem 3.1) — Algorithm 1: ≤ ⌊3n/2⌋+4 activations, 6 colors, proper",
        &["n", "input", "schedule", "max acts", "bound", "ok"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.input.to_string(),
                    r.schedule.to_string(),
                    r.max_activations.to_string(),
                    r.bound.to_string(),
                    r.ok.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_all_ok() {
        let rows = run(&[3, 5, 9], 2);
        assert_eq!(rows.len(), 3 * 4 * 3);
        assert!(rows.iter().all(|r| r.ok), "{rows:?}");
        // The alternating input is O(1) regardless of n.
        let alt9 = rows
            .iter()
            .find(|r| r.n == 9 && r.input == "alternating" && r.schedule == "sync")
            .unwrap();
        assert!(alt9.max_activations <= 8);
    }

    #[test]
    fn staircase_grows_linearly() {
        let rows = run(&[8, 64], 1);
        let get = |n: usize| {
            rows.iter()
                .find(|r| r.n == n && r.input == "staircase" && r.schedule == "sync")
                .unwrap()
                .max_activations
        };
        assert!(get(64) > 3 * get(8), "staircase should scale with n");
    }
}
