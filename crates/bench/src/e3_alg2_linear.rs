//! **E3 — Theorem 3.11.** Algorithm 2 terminates within `3n + 8`
//! activations with the optimal 5-color palette `{0, …, 4}` — in
//! crash-free executions. (Its behavior *under crashes* is the subject
//! of the reproduction finding documented in E6 and DESIGN.md.)

use crate::common::{coloring_ok, run_cycle, SchedKind};
use ftcolor_checker::invariants::theorem_3_11_bound;
use ftcolor_core::FiveColoring;
use ftcolor_model::inputs;
use serde::Serialize;

/// One measurement row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size.
    pub n: usize,
    /// Input shape label.
    pub input: &'static str,
    /// Schedule label.
    pub schedule: &'static str,
    /// Measured worst-case activations.
    pub max_activations: u64,
    /// The Theorem 3.11 bound `3n + 8`.
    pub bound: u64,
    /// Largest color observed (must be ≤ 4).
    pub max_color: u64,
    /// Whether every execution was proper, in-palette, within bound.
    pub ok: bool,
}

/// Runs the sweep.
pub fn run(sizes: &[usize], seeds: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        for (input_label, ids) in [
            ("staircase", inputs::staircase(n)),
            ("alternating", inputs::alternating(n)),
            ("random", inputs::random_permutation(n, 0xE3)),
        ] {
            for kind in [SchedKind::Sync, SchedKind::RoundRobin, SchedKind::Random] {
                let mut worst = 0u64;
                let mut max_color = 0u64;
                let mut ok = true;
                for seed in 0..seeds {
                    let fuel = 600 * n as u64 + 6000;
                    let (topo, report) =
                        run_cycle(&FiveColoring, &ids, kind, seed, fuel).expect("wait-free");
                    worst = worst.max(report.max_activations());
                    max_color =
                        max_color.max(report.outputs.iter().flatten().copied().max().unwrap_or(0));
                    ok &= report.all_returned()
                        && coloring_ok(&topo, &report, |c| *c, 5)
                        && report.max_activations() <= theorem_3_11_bound(n);
                }
                rows.push(Row {
                    n,
                    input: input_label,
                    schedule: kind.label(),
                    max_activations: worst,
                    bound: theorem_3_11_bound(n),
                    max_color,
                    ok,
                });
            }
        }
    }
    rows
}

/// Renders the E3 table.
pub fn table(rows: &[Row]) -> String {
    crate::common::render_table(
        "E3 (Theorem 3.11) — Algorithm 2: ≤ 3n+8 activations, palette {0..4}, proper",
        &[
            "n",
            "input",
            "schedule",
            "max acts",
            "bound",
            "max color",
            "ok",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.input.to_string(),
                    r.schedule.to_string(),
                    r.max_activations.to_string(),
                    r.bound.to_string(),
                    r.max_color.to_string(),
                    r.ok.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_all_ok() {
        let rows = run(&[3, 6, 12], 2);
        assert!(rows.iter().all(|r| r.ok), "{rows:#?}");
        assert!(rows.iter().all(|r| r.max_color <= 4));
    }

    #[test]
    fn palette_reaches_high_colors_somewhere() {
        let rows = run(&[3, 5, 7, 9], 4);
        let top = rows.iter().map(|r| r.max_color).max().unwrap();
        assert!(top >= 3, "expected rich palette usage, top color {top}");
    }
}
