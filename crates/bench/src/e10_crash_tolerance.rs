//! **E10 — crash tolerance.** Sweep the crash fraction and verify the
//! fault-tolerance story quantitatively:
//!
//! * **safety is unconditional** — every surviving output set properly
//!   colors the induced subgraph, under any crash pattern, for all
//!   three algorithms;
//! * **Algorithm 1's liveness survives crashes** — every survivor
//!   returns within the Theorem 3.1 bound;
//! * **Algorithms 2/3's liveness does not always survive crashes** —
//!   the reproduction finding (DESIGN.md): a measurable fraction of
//!   survivors can starve next to crashed registers. The sweep reports
//!   that fraction instead of hiding it.
//!
//! The OS-thread runtime repeats the sweep under real concurrency.

use ftcolor_core::{FastFiveColoring, FiveColoring, SixColoring};
use ftcolor_model::inputs;
use ftcolor_model::prelude::*;
use ftcolor_runtime::{run_threaded, RunOptions};
use serde::Serialize;

/// One (algorithm, crash fraction) cell.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Substrate label (`sim` or `threads`).
    pub substrate: &'static str,
    /// Fraction of processes crashed (percent).
    pub crash_pct: u32,
    /// Processes crashed.
    pub crashed: usize,
    /// Survivors that returned.
    pub returned: usize,
    /// Survivors that starved (activated ≥ cap without returning).
    pub starved: usize,
    /// Whether every output set was a proper partial coloring in-palette.
    pub safe: bool,
}

fn crash_set(n: usize, pct: u32, seed: u64) -> Vec<(ProcessId, u64)> {
    let k = n * pct as usize / 100;
    // Deterministic spread: every (n/k)-th process, offset by seed.
    (0..k)
        .map(|i| {
            let p = (i * n / k.max(1) + seed as usize) % n;
            (ProcessId(p), seed % 3 + 1)
        })
        .collect()
}

fn simulate<A>(
    label: &'static str,
    alg: &A,
    palette_ok: impl Fn(&A::Output) -> bool,
    n: usize,
    pct: u32,
    seed: u64,
) -> Row
where
    A: Algorithm<Input = u64>,
{
    let topo = Topology::cycle(n).unwrap();
    let ids = inputs::random_unique(n, 1 << 30, seed);
    let crashes = crash_set(n, pct, seed);
    let crash_ids: std::collections::HashSet<usize> =
        crashes.iter().map(|(p, _)| p.index()).collect();
    let mut sched = CrashPlan::new(Synchronous::new(), crashes);
    let mut exec = Execution::new(alg, &topo, ids);
    for t in 0..10_000u64 {
        if exec.all_returned() {
            break;
        }
        let Some(set) = sched.next(t + 1, exec.working()) else {
            break;
        };
        exec.step_with(&set);
    }
    let returned = exec.outputs().iter().flatten().count();
    let starved = (0..n)
        .filter(|&i| exec.outputs()[i].is_none() && !crash_ids.contains(&i))
        .count();
    // A process scheduled to crash may have returned before its crash
    // time; count only the ones that actually died working.
    let crashed_actual = crash_ids
        .iter()
        .filter(|&&i| exec.outputs()[i].is_none())
        .count();
    Row {
        algorithm: label,
        substrate: "sim",
        crash_pct: pct,
        crashed: crashed_actual,
        returned,
        starved,
        safe: topo.is_proper_partial_coloring(exec.outputs())
            && exec.outputs().iter().flatten().all(&palette_ok),
    }
}

/// Runs the crash sweep on the simulator for all three algorithms.
pub fn run(n: usize, seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for pct in [0u32, 10, 25, 50, 75] {
        rows.push(simulate(
            "Alg1",
            &SixColoring,
            |c| c.weight() <= 2,
            n,
            pct,
            seed,
        ));
        rows.push(simulate("Alg2", &FiveColoring, |&c| c <= 4, n, pct, seed));
        rows.push(simulate(
            "Alg3",
            &FastFiveColoring,
            |&c| c <= 4,
            n,
            pct,
            seed,
        ));
    }
    rows
}

/// Repeats a few cells of the sweep on real OS threads.
pub fn run_threads(n: usize, seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for pct in [0u32, 25] {
        let topo = Topology::cycle(n).unwrap();
        let ids = inputs::random_unique(n, 1 << 30, seed);
        let mut opts = RunOptions::new().jitter(40).with_seed(seed).cap(30_000);
        // Crash before the first round so the crashes are guaranteed to
        // bite (a thread may otherwise return before its crash round).
        for (p, _) in crash_set(n, pct, seed) {
            opts = opts.crash(p.index(), 0);
        }
        let report = run_threaded(&SixColoring, &topo, ids, &opts);
        rows.push(Row {
            algorithm: "Alg1",
            substrate: "threads",
            crash_pct: pct,
            crashed: report.crashed.len(),
            returned: report.outputs.iter().flatten().count(),
            starved: report.capped.len(),
            safe: topo.is_proper_partial_coloring(&report.outputs)
                && report.outputs.iter().flatten().all(|c| c.weight() <= 2),
        });
    }
    rows
}

/// Renders the E10 table.
pub fn table(rows: &[Row]) -> String {
    crate::common::render_table(
        "E10 — crash sweep: safety unconditional; Alg1 survivors always return; \
         Alg2/3 survivor starvation quantified (reproduction finding)",
        &[
            "algorithm",
            "substrate",
            "crash %",
            "crashed",
            "returned",
            "starved",
            "safe",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.to_string(),
                    r.substrate.to_string(),
                    r.crash_pct.to_string(),
                    r.crashed.to_string(),
                    r.returned.to_string(),
                    r.starved.to_string(),
                    r.safe.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_is_unconditional_and_alg1_never_starves() {
        let rows = run(40, 3);
        for r in &rows {
            assert!(r.safe, "{r:?}");
            if r.algorithm == "Alg1" {
                assert_eq!(r.starved, 0, "Algorithm 1 is wait-free: {r:?}");
                assert_eq!(r.returned + r.crashed, 40, "{r:?}");
            }
        }
    }

    #[test]
    fn zero_crashes_means_everyone_returns() {
        let rows = run(24, 1);
        for r in rows.iter().filter(|r| r.crash_pct == 0) {
            assert_eq!(r.returned, 24, "{r:?}");
            assert_eq!(r.starved, 0);
        }
    }

    #[test]
    fn threaded_sweep_is_safe() {
        let rows = run_threads(16, 5);
        for r in &rows {
            assert!(r.safe, "{r:?}");
            assert_eq!(r.starved, 0, "Algorithm 1 on threads: {r:?}");
        }
    }
}
