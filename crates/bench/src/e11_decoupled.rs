//! **E11 — model separation vs DECOUPLED (§1.4).** The paper positions
//! its model against DECOUPLED \[13, 18\], where the network is
//! synchronous and reliable while processes stay asynchronous and
//! crash-prone. The separation, measured:
//!
//! * in DECOUPLED, the ring is wait-free **3-colorable** in a constant
//!   number of activations (the network does the propagation);
//! * in the paper's fully asynchronous model, **5 colors are necessary**
//!   (Property 2.3) and achieved by Algorithm 3 — and a crashed segment
//!   *blocks* information, which DECOUPLED's network ignores.

use ftcolor_core::decoupled_ring::DecoupledThreeColoring;
use ftcolor_core::FastFiveColoring;
use ftcolor_model::decoupled::DecoupledExecution;
use ftcolor_model::inputs;
use ftcolor_model::prelude::*;
use serde::Serialize;

/// One (model, n, crash fraction) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Which model/algorithm.
    pub model: &'static str,
    /// Ring size.
    pub n: usize,
    /// Percent of processes crashed at time 1.
    pub crash_pct: u32,
    /// Colors used by the survivors.
    pub colors_used: usize,
    /// Largest color output.
    pub max_color: u64,
    /// Max activations over deciding processes.
    pub max_activations: u64,
    /// Survivors that decided / survivors total.
    pub decided: usize,
    /// Whether the partial coloring is proper.
    pub proper: bool,
}

fn crash_plan(n: usize, pct: u32) -> Vec<(ProcessId, Time)> {
    let k = n * pct as usize / 100;
    (0..k).map(|i| (ProcessId(i * n / k.max(1)), 1)).collect()
}

/// Runs the separation sweep.
pub fn run(sizes: &[usize], seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        for pct in [0u32, 40] {
            let ids = inputs::random_unique(n, 1 << 40, seed + n as u64);
            let topo = Topology::cycle(n).unwrap();
            let crashes = crash_plan(n, pct);
            let crashed: std::collections::HashSet<usize> =
                crashes.iter().map(|(p, _)| p.index()).collect();

            // DECOUPLED 3-coloring.
            let alg = DecoupledThreeColoring::new();
            let mut exec = DecoupledExecution::new(&alg, &topo, ids.clone());
            let sched = CrashPlan::new(Synchronous::new(), crashes.clone());
            let report = exec.run(sched, 100_000).expect("decoupled wait-free");
            rows.push(summarize(
                "DECOUPLED 3-coloring",
                n,
                pct,
                &topo,
                &report,
                &crashed,
            ));

            // Fully asynchronous Algorithm 3 (driven for a bounded number
            // of steps; survivors may starve only in the adversarial
            // patterns documented in E6, not under this plan).
            let mut exec = Execution::new(&FastFiveColoring, &topo, ids);
            let mut sched = CrashPlan::new(Synchronous::new(), crashes);
            for t in 0..5_000u64 {
                if exec.all_returned() {
                    break;
                }
                let Some(set) = sched.next(t + 1, exec.working()) else {
                    break;
                };
                exec.step_with(&set);
            }
            let report = ftcolor_model::ExecutionReport {
                outputs: exec.outputs().to_vec(),
                activations: (0..n)
                    .map(|i| exec.activation_count(ProcessId(i)))
                    .collect(),
                time_steps: exec.time(),
                crashed: vec![],
            };
            rows.push(summarize(
                "async Algorithm 3",
                n,
                pct,
                &topo,
                &report,
                &crashed,
            ));
        }
    }
    rows
}

fn summarize(
    model: &'static str,
    n: usize,
    pct: u32,
    topo: &Topology,
    report: &ftcolor_model::ExecutionReport<u64>,
    crashed: &std::collections::HashSet<usize>,
) -> Row {
    let colors: std::collections::HashSet<u64> = report.outputs.iter().flatten().copied().collect();
    Row {
        model,
        n,
        crash_pct: pct,
        colors_used: colors.len(),
        max_color: colors.iter().copied().max().unwrap_or(0),
        max_activations: report
            .outputs
            .iter()
            .zip(&report.activations)
            .filter(|(o, _)| o.is_some())
            .map(|(_, &a)| a)
            .max()
            .unwrap_or(0),
        decided: report
            .outputs
            .iter()
            .enumerate()
            .filter(|(i, o)| o.is_some() && !crashed.contains(i))
            .count(),
        proper: topo.is_proper_partial_coloring(&report.outputs),
    }
}

/// Renders the E11 table.
pub fn table(rows: &[Row]) -> String {
    crate::common::render_table(
        "E11 — model separation: DECOUPLED (3 colors, network relays through crashes) \
         vs fully asynchronous (5 colors, Property 2.3)",
        &[
            "model",
            "n",
            "crash %",
            "colors",
            "max color",
            "max acts",
            "decided",
            "proper",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.to_string(),
                    r.n.to_string(),
                    r.crash_pct.to_string(),
                    r.colors_used.to_string(),
                    r.max_color.to_string(),
                    r.max_activations.to_string(),
                    r.decided.to_string(),
                    r.proper.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separation_holds() {
        let rows = run(&[12, 40], 3);
        for r in &rows {
            assert!(r.proper, "{r:?}");
            if r.model.starts_with("DECOUPLED") {
                assert!(r.max_color <= 2, "{r:?}");
                assert!(r.max_activations <= 8, "{r:?}");
            } else {
                assert!(r.max_color <= 4, "{r:?}");
            }
        }
        // With crashes, DECOUPLED still gets every survivor decided.
        for r in rows
            .iter()
            .filter(|r| r.model.starts_with("DECOUPLED") && r.crash_pct > 0)
        {
            assert_eq!(r.decided, r.n - r.n * 40 / 100, "{r:?}");
        }
    }
}
