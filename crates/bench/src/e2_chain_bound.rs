//! **E2 — Lemma 3.9 / Remark 3.10.** The per-process refinement of
//! Theorem 3.1: a process at monotone distances `ℓ, ℓ′` from its nearest
//! local extrema returns within `min{3ℓ, 3ℓ′, ℓ+ℓ′} + 4` activations —
//! and the inputs need only properly color the cycle, not be unique.

use crate::common::{run_cycle, SchedKind};
use ftcolor_checker::chains::ChainAnalysis;
use ftcolor_core::SixColoring;
use ftcolor_model::inputs;
use serde::Serialize;

/// One measurement row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size.
    pub n: usize,
    /// Input shape label.
    pub input: String,
    /// Schedule label.
    pub schedule: &'static str,
    /// Worst measured activations across processes and seeds.
    pub max_activations: u64,
    /// Worst per-process Lemma 3.9 bound (max over processes).
    pub max_bound: u64,
    /// Tightness: worst measured / bound ratio ×1000 over processes.
    pub worst_ratio_milli: u64,
    /// Whether every process respected its own per-process bound.
    pub all_within: bool,
}

/// Runs the per-process bound check over random and structured rings,
/// plus the Remark 3.10 non-unique proper-coloring inputs.
pub fn run(sizes: &[usize], seeds: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut cases: Vec<(String, Vec<u64>)> = vec![
            ("staircase".into(), inputs::staircase(n)),
            ("organ-pipe".into(), inputs::organ_pipe(n)),
        ];
        for seed in 0..seeds {
            cases.push((
                format!("random#{seed}"),
                inputs::random_permutation(n, seed),
            ));
        }
        if n >= 3 {
            cases.push(("proper-3-coloring".into(), inputs::proper_k_coloring(n, 3)));
        }
        for (label, ids) in cases {
            let analysis = ChainAnalysis::for_cycle(&ids);
            for kind in [SchedKind::Sync, SchedKind::Random] {
                let (_, report) = run_cycle(&SixColoring, &ids, kind, 17, 400 * n as u64 + 4000)
                    .expect("wait-free");
                let mut all_within = true;
                let mut worst_ratio = 0u64;
                for p in 0..n {
                    let bound = analysis.lemma_3_9_bound(p);
                    let acts = report.activations[p];
                    all_within &= acts <= bound;
                    worst_ratio = worst_ratio.max(acts * 1000 / bound);
                }
                rows.push(Row {
                    n,
                    input: label.clone(),
                    schedule: kind.label(),
                    max_activations: report.max_activations(),
                    max_bound: (0..n).map(|p| analysis.lemma_3_9_bound(p)).max().unwrap(),
                    worst_ratio_milli: worst_ratio,
                    all_within,
                });
            }
        }
    }
    rows
}

/// One point of the chain-length sweep: activations as a function of the
/// tooth length `k` at fixed `n` — the Lemma 3.9 "figure" (convergence
/// time tracks the monotone-chain length, not the ring size).
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Fixed ring size.
    pub n: usize,
    /// Sawtooth tooth length (≈ monotone chain length).
    pub k: usize,
    /// Measured max activations (synchronous schedule).
    pub max_activations: u64,
    /// The Lemma 3.9 bound for the worst-positioned process.
    pub max_bound: u64,
}

/// Sweeps the tooth length at fixed `n` (Algorithm 1, synchronous).
pub fn run_chain_sweep(n: usize, teeth: &[usize]) -> Vec<SweepRow> {
    teeth
        .iter()
        .map(|&k| {
            let ids = inputs::sawtooth(n, k);
            let analysis = ChainAnalysis::for_cycle(&ids);
            let (_, report) = run_cycle(&SixColoring, &ids, SchedKind::Sync, 0, 400 * n as u64)
                .expect("wait-free");
            SweepRow {
                n,
                k,
                max_activations: report.max_activations(),
                max_bound: (0..n).map(|p| analysis.lemma_3_9_bound(p)).max().unwrap(),
            }
        })
        .collect()
}

/// Renders the chain-length sweep table.
pub fn sweep_table(rows: &[SweepRow]) -> String {
    crate::common::render_table(
        "E2b (Lemma 3.9 shape) — activations scale with chain length k, not ring size",
        &["n", "k", "max acts", "max bound"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.k.to_string(),
                    r.max_activations.to_string(),
                    r.max_bound.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Renders the E2 table.
pub fn table(rows: &[Row]) -> String {
    crate::common::render_table(
        "E2 (Lemma 3.9 / Remark 3.10) — per-process bound min{3ℓ,3ℓ′,ℓ+ℓ′}+4",
        &[
            "n",
            "input",
            "schedule",
            "max acts",
            "max bound",
            "worst ratio",
            "all within",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.input.clone(),
                    r.schedule.to_string(),
                    r.max_activations.to_string(),
                    r.max_bound.to_string(),
                    format!("{:.3}", r.worst_ratio_milli as f64 / 1000.0),
                    r.all_within.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_per_process() {
        let rows = run(&[6, 11, 20], 3);
        assert!(rows.iter().all(|r| r.all_within), "{rows:#?}");
    }

    #[test]
    fn chain_sweep_scales_with_k_not_n() {
        let rows = run_chain_sweep(240, &[1, 2, 4, 8, 16, 32]);
        for w in rows.windows(2) {
            assert!(
                w[1].max_activations + 2 >= w[0].max_activations,
                "activations should (weakly) grow with k: {rows:?}"
            );
        }
        let small = rows.first().unwrap().max_activations;
        let large = rows.last().unwrap().max_activations;
        assert!(large >= 3 * small, "k=32 must dominate k=1: {rows:?}");
        for r in &rows {
            assert!(r.max_activations <= r.max_bound, "{r:?}");
        }
    }

    #[test]
    fn proper_coloring_inputs_finish_in_constant_rounds() {
        let rows = run(&[30], 0);
        let r = rows
            .iter()
            .find(|r| r.input == "proper-3-coloring" && r.schedule == "sync")
            .unwrap();
        // Chains under 3 colors have ≤ 2 edges → bound ≤ 3·2+4.
        assert!(r.max_bound <= 10, "{r:?}");
        assert!(r.max_activations <= 10);
    }
}
