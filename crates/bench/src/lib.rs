//! # `ftcolor-bench` — the experiment harness
//!
//! One module per experiment (E1–E10, indexed in DESIGN.md §5), each
//! exposing a `run()` that produces serializable result rows. Three
//! consumers share these drivers:
//!
//! * `cargo run -p ftcolor-bench --release --bin experiments` — prints
//!   every table (paper claim vs measured) and writes
//!   `experiments.json`; EXPERIMENTS.md records this output;
//! * `cargo bench` — Criterion benches timing the representative
//!   workloads (`benches/`, one target per experiment);
//! * the test suite — each driver has smoke tests pinning the claims.
//!
//! The paper is a brief announcement with no numbered tables/figures;
//! the experiments reproduce its *theorems* (see DESIGN.md §5 for the
//! mapping).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod common;
pub mod e10_crash_tolerance;
pub mod e11_decoupled;
pub mod e14_net;
pub mod e16_service;
pub mod e19_wire;
pub mod e1_alg1_linear;
pub mod e2_chain_bound;
pub mod e3_alg2_linear;
pub mod e4_cole_vishkin;
pub mod e5_alg3_logstar;
pub mod e6_modelcheck;
pub mod e7_mis_impossible;
pub mod e8_general_graphs;
pub mod e9_baselines;
