//! **E16 — batch service throughput.** The struct-of-arrays batch
//! engine (`ftcolor-batch`) against the two regimes the paper's
//! algorithms span:
//!
//! * **`fleet-c5`** — a burst of small `C5` instances (Algorithm 2′
//!   under seeded random-subset schedules with 5% crash noise), all in
//!   flight at once: the millions-of-concurrent-instances regime the
//!   packed interned slab representation exists for. Full mode admits
//!   1,000,000 instances in a single arrival round.
//! * **`ring-logstar`** — one giant synchronous ring on the
//!   materialized path (Algorithm 3′, seeded identifier permutation):
//!   the `O(log* n)` regime. Full mode runs `n = 10,000,000`.
//!
//! Each run produces one [`ServiceBenchRow`] mixing deterministic
//! outcome facts (completed counts, rounds, latency percentiles, the
//! commutative outputs digest) with honest wall-clock measurements
//! (colorings/sec, elapsed, peak RSS). The committed
//! `BENCH_service.json` at the repository root is the baseline;
//! `bench_guard --service` re-checks the deterministic fields exactly
//! and gates throughput on the big rows (see the guard's docs).

use ftcolor_batch::{run_service, ServiceConfig};
use ftcolor_core::{FastFiveColoringPatched, FiveColoringPatched};
use serde::{Deserialize, Serialize};

/// One row of the committed `BENCH_service.json` snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceBenchRow {
    /// Workload label (`fleet-c5` or `ring-logstar`).
    pub workload: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Ring size of every instance.
    pub n: usize,
    /// Instances admitted.
    pub instances: u64,
    /// Worker threads the run used.
    pub jobs: usize,
    /// Instances that finished (deterministic; must match exactly).
    pub completed: u64,
    /// Sweep rounds executed (deterministic; must match exactly).
    pub rounds: u64,
    /// Median completion latency in sweep rounds (deterministic).
    pub latency_p50: u64,
    /// 99th-percentile completion latency in sweep rounds
    /// (deterministic).
    pub latency_p99: u64,
    /// Commutative digest over all outcomes (deterministic; must match
    /// exactly — it condenses every color, crash set, and step count).
    pub outputs_digest: String,
    /// Wall-clock throughput: completed colorings per second.
    pub colorings_per_sec: u64,
    /// Wall-clock of the run in milliseconds.
    pub elapsed_ms: u64,
    /// Peak resident set in KiB (reported, never gated).
    pub peak_rss_kib: u64,
}

/// The `fleet-c5` workload at a given scale: a single-round burst
/// (rate far above the instance count) so the whole fleet is in flight
/// simultaneously.
pub fn fleet_row(instances: u64) -> ServiceBenchRow {
    let cfg = ServiceConfig {
        n: 5,
        instances,
        rate: 1e12,
        seed: 2022,
        sync: false,
        p: 0.5,
        crash_prob: 0.05,
        crash_horizon: 8,
        universe: 64,
        fuel: 100_000,
        quantum: 8,
        jobs: 0,
    };
    let (summary, timings) = run_service(
        &FiveColoringPatched,
        "alg2p",
        5,
        |c: &u64| usize::try_from(*c).expect("color fits usize"),
        &cfg,
    );
    assert!(
        summary.valid,
        "refusing to snapshot an invalid fleet run: {summary:?}"
    );
    ServiceBenchRow {
        workload: "fleet-c5".to_string(),
        algorithm: summary.algorithm,
        n: summary.n,
        instances: summary.instances,
        jobs: timings.jobs,
        completed: summary.completed,
        rounds: summary.rounds,
        latency_p50: summary.latency_p50,
        latency_p99: summary.latency_p99,
        outputs_digest: summary.outputs_digest,
        colorings_per_sec: timings.colorings_per_sec,
        elapsed_ms: timings.elapsed_ms,
        peak_rss_kib: timings.peak_rss_kib,
    }
}

/// The `ring-logstar` workload: one synchronous ring of size `n` on
/// the materialized path (Algorithm 3′, seeded identifier permutation).
pub fn ring_row(n: usize) -> ServiceBenchRow {
    let cfg = ServiceConfig {
        n,
        instances: 1,
        rate: 1.0,
        seed: 7,
        sync: true,
        p: 0.5,
        crash_prob: 0.0,
        crash_horizon: 8,
        universe: n as u64,
        fuel: 100_000,
        quantum: 8,
        jobs: 1,
    };
    let (summary, timings) = run_service(
        &FastFiveColoringPatched,
        "alg3p",
        5,
        |c: &u64| usize::try_from(*c).expect("color fits usize"),
        &cfg,
    );
    assert!(
        summary.valid,
        "refusing to snapshot an invalid ring run: {summary:?}"
    );
    ServiceBenchRow {
        workload: "ring-logstar".to_string(),
        algorithm: summary.algorithm,
        n: summary.n,
        instances: summary.instances,
        jobs: timings.jobs,
        completed: summary.completed,
        rounds: summary.rounds,
        latency_p50: summary.latency_p50,
        latency_p99: summary.latency_p99,
        outputs_digest: summary.outputs_digest,
        colorings_per_sec: timings.colorings_per_sec,
        elapsed_ms: timings.elapsed_ms,
        peak_rss_kib: timings.peak_rss_kib,
    }
}

/// CI-sized rows: small enough for a per-commit run, same workload
/// shapes as full mode so the deterministic fields guard the engine.
pub fn quick_rows() -> Vec<ServiceBenchRow> {
    vec![fleet_row(20_000), ring_row(200_000)]
}

/// The headline rows: 1M concurrent `C5` instances and the `n = 10M`
/// `O(log* n)` ring. Minutes of single-core work — run locally to
/// refresh the committed baseline, not in CI.
pub fn full_rows() -> Vec<ServiceBenchRow> {
    vec![fleet_row(1_000_000), ring_row(10_000_000)]
}

/// Renders rows as a human-readable table (for the experiments log).
pub fn table(rows: &[ServiceBenchRow]) -> String {
    let mut out = String::from(
        "E16 (batch service) — workload | alg | n | instances | completed | rounds | \
         p50/p99 | colorings/s | ms | peak KiB\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{} | {} | {} | {} | {} | {} | {}/{} | {} | {} | {}\n",
            r.workload,
            r.algorithm,
            r.n,
            r.instances,
            r.completed,
            r.rounds,
            r.latency_p50,
            r.latency_p99,
            r.colorings_per_sec,
            r.elapsed_ms,
            r.peak_rss_kib
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_row_is_deterministic_where_it_claims_to_be() {
        let a = fleet_row(500);
        let b = fleet_row(500);
        assert_eq!(a.completed, 500);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.latency_p50, b.latency_p50);
        assert_eq!(a.latency_p99, b.latency_p99);
        assert_eq!(a.outputs_digest, b.outputs_digest);
    }

    #[test]
    fn ring_row_colors_a_synchronous_ring() {
        let r = ring_row(1_000);
        assert_eq!(r.completed, 1);
        assert_eq!(r.instances, 1);
        assert!(!r.outputs_digest.is_empty());
    }
}
