//! **E5 — Theorem 4.4 (the headline result).** On adversarial staircase
//! identifiers, Algorithm 2 needs `Θ(n)` activations while Algorithm 3
//! stays at `O(log* n)` — effectively flat for every feasible `n`. This
//! is the paper's central "figure": round complexity vs ring size, with
//! the crossover at small `n`.

use crate::common::{coloring_ok, run_cycle, SchedKind};
use ftcolor_checker::invariants::theorem_4_4_bound;
use ftcolor_core::{FastFiveColoring, FastFiveColoringPatched, FiveColoring};
use ftcolor_model::inputs;
use ftcolor_model::logstar::log_star_u64;
use serde::Serialize;

/// One point of the headline series.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size.
    pub n: usize,
    /// `log* n` for reference.
    pub log_star: u32,
    /// Algorithm 2 max activations on the staircase (`None` = skipped,
    /// too slow to run at this size; it is provably ≥ n/2-ish).
    pub alg2_max: Option<u64>,
    /// Algorithm 3 max activations on the same input.
    pub alg3_max: u64,
    /// The patched Algorithm 3's max activations (the repair costs
    /// nothing on the headline workload).
    pub alg3_patched_max: u64,
    /// The Theorem 4.4 regression bound used in tests.
    pub alg3_bound: u64,
    /// Whether Algorithm 3's execution was proper, in-palette, in-bound.
    pub ok: bool,
}

/// Runs the headline sweep under the synchronous schedule (the schedule
/// that realizes the staircase worst case for Algorithm 2).
///
/// `alg2_cutoff`: largest `n` at which Algorithm 2 is actually run.
pub fn run(sizes: &[usize], alg2_cutoff: usize) -> Vec<Row> {
    sizes
        .iter()
        .map(|&n| {
            let ids = inputs::staircase_poly(n);
            let alg2_max = (n <= alg2_cutoff).then(|| {
                let (_, report) = run_cycle(
                    &FiveColoring,
                    &ids,
                    SchedKind::Sync,
                    0,
                    40 * n as u64 + 1000,
                )
                .expect("wait-free");
                report.max_activations()
            });
            let (topo, report) =
                run_cycle(&FastFiveColoring, &ids, SchedKind::Sync, 0, 100_000).expect("wait-free");
            let alg3_max = report.max_activations();
            let (_, patched_report) =
                run_cycle(&FastFiveColoringPatched, &ids, SchedKind::Sync, 0, 100_000)
                    .expect("patched terminates");
            let alg3_patched_max = patched_report.max_activations();
            let bound = theorem_4_4_bound(n);
            Row {
                n,
                log_star: log_star_u64(n as u64),
                alg2_max,
                alg3_max,
                alg3_patched_max,
                alg3_bound: bound,
                ok: report.all_returned()
                    && coloring_ok(&topo, &report, |c| *c, 5)
                    && alg3_max <= bound,
            }
        })
        .collect()
}

/// Renders the E5 table.
pub fn table(rows: &[Row]) -> String {
    crate::common::render_table(
        "E5 (Theorem 4.4, headline) — staircase worst case: Alg 2 Θ(n) vs Alg 3 O(log* n)",
        &[
            "n",
            "log*",
            "alg2 max acts",
            "alg3 max acts",
            "alg3p max acts",
            "alg3 bound",
            "ok",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.log_star.to_string(),
                    r.alg2_max.map_or("(skipped)".into(), |v| v.to_string()),
                    r.alg3_max.to_string(),
                    r.alg3_patched_max.to_string(),
                    r.alg3_bound.to_string(),
                    r.ok.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// The crossover size: smallest measured `n` where Algorithm 3 beats
/// Algorithm 2 on the staircase.
pub fn crossover(rows: &[Row]) -> Option<usize> {
    rows.iter()
        .find(|r| r.alg2_max.is_some_and(|a2| r.alg3_max < a2))
        .map(|r| r.n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_linear_vs_flat() {
        let rows = run(&[8, 64, 512], 512);
        // Algorithm 2 grows ~linearly.
        let a2 = |n: usize| rows.iter().find(|r| r.n == n).unwrap().alg2_max.unwrap();
        assert!(
            a2(512) >= 4 * a2(64) / 2,
            "a2(512)={} a2(64)={}",
            a2(512),
            a2(64)
        );
        // Algorithm 3 stays flat (within the log* bound).
        for r in &rows {
            assert!(r.ok, "{r:?}");
        }
        let a3: Vec<u64> = rows.iter().map(|r| r.alg3_max).collect();
        assert!(
            a3.iter().max().unwrap() - a3.iter().min().unwrap() <= 20,
            "Algorithm 3 should be near-flat: {a3:?}"
        );
    }

    #[test]
    fn crossover_is_small() {
        let rows = run(&[4, 8, 16, 32, 64, 128], 128);
        let x = crossover(&rows).expect("crossover exists");
        assert!(x <= 64, "crossover at {x}");
    }
}
