//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde` crate's value-model `Serialize` /
//! `Deserialize` traits for the shapes this workspace actually uses:
//! unit / tuple / named-field structs and enums whose variants are unit,
//! tuple, or named-field — all without generics and without `#[serde]`
//! attributes. The JSON encoding mirrors upstream serde's externally
//! tagged defaults (named struct → object, newtype → inner value, unit
//! variant → string, data variant → single-key object).
//!
//! Parsing is done directly on the token stream (no `syn`/`quote`,
//! which are unavailable offline); unsupported shapes produce a
//! `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return format!("compile_error!({msg:?});").parse().unwrap(),
    };
    let code = match (&item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => struct_ser(name, fields),
        (Item::Struct { name, fields }, Mode::Deserialize) => struct_de(name, fields),
        (Item::Enum { name, variants }, Mode::Serialize) => enum_ser(name, variants),
        (Item::Enum { name, variants }, Mode::Deserialize) => enum_de(name, variants),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected a type name, got {other:?}")),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type `{name}` is not supported by the offline derive"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next(); // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Skips a type (field type position) up to a top-level `,`, tracking
/// angle-bracket depth so `HashMap<K, V>` commas don't end the field.
fn skip_type(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    while let Some(tt) = toks.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                toks.next();
                return;
            }
            _ => {}
        }
        toks.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(i)) => {
                fields.push(i.to_string());
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => skip_type(&mut toks),
                    other => return Err(format!("expected `:` after field, got {other:?}")),
                }
            }
            other => return Err(format!("expected a field name, got {other:?}")),
        }
    }
}

/// Counts the comma-separated types of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_tokens = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(ref p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(ref p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(ref p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    count + usize::from(saw_tokens)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected a variant name, got {other:?}")),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                toks.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err("serde shim: explicit enum discriminants are not supported".into());
        }
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, fields });
    }
}

// ---------------------------------------------------------------- codegen

fn struct_ser(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let items: Vec<String> = names
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{
            fn to_value(&self) -> ::serde::Value {{ {body} }}
        }}"
    )
}

fn struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("{{ __v.expect_null({name:?})?; Ok({name}) }}"),
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "{{ let __a = __v.expect_array({n}, {name:?})?; Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Fields::Named(names) => {
            let items: Vec<String> = names
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(__o.field({f:?}, {name:?})?)?")
                })
                .collect();
            format!(
                "{{ let __o = __v.expect_object({name:?})?; Ok({name} {{ {} }}) }}",
                items.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{
            fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}
        }}"
    )
}

fn enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),"
                ),
                Fields::Tuple(1) => format!(
                    "{name}::{vn}(__f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(__f0))]),"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let binds = fields.join(", ");
                    let items: Vec<String> = fields
                        .iter()
                        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                        items.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{
            fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}
        }}",
        arms.join("\n")
    )
}

fn enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("{:?} => return Ok({name}::{}),", v.name, v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => None,
                Fields::Tuple(1) => Some(format!(
                    "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                )),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                        .collect();
                    Some(format!(
                        "{vn:?} => {{ let __a = __inner.expect_array({n}, {name:?})?; return Ok({name}::{vn}({})); }}",
                        items.join(", ")
                    ))
                }
                Fields::Named(fields) => {
                    let items: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(__fo.field({f:?}, {name:?})?)?")
                        })
                        .collect();
                    Some(format!(
                        "{vn:?} => {{ let __fo = __inner.expect_object({name:?})?; return Ok({name}::{vn} {{ {} }}); }}",
                        items.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{
            fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{
                match __v {{
                    ::serde::Value::String(__s) => {{
                        match __s.as_str() {{ {units} _ => {{}} }}
                        Err(::serde::Error::custom(format!(\"unknown {name} variant {{__s}}\")))
                    }}
                    ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{
                        let (__tag, __inner) = (&__pairs[0].0, &__pairs[0].1);
                        match __tag.as_str() {{ {datas} _ => {{}} }}
                        Err(::serde::Error::custom(format!(\"unknown {name} variant {{__tag}}\")))
                    }}
                    __other => Err(::serde::Error::custom(format!(\"expected a {name} variant, got {{__other:?}}\"))),
                }}
            }}
        }}",
        units = unit_arms.join("\n"),
        datas = data_arms.join("\n"),
    )
}
