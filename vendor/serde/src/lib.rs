//! Offline stand-in for `serde`.
//!
//! Instead of upstream serde's visitor-based data model, this shim uses a
//! concrete [`Value`] tree: [`Serialize`] renders a type into a `Value`
//! and [`Deserialize`] rebuilds it from one. The companion `serde_json`
//! shim converts `Value` to and from JSON text using the same conventions
//! as upstream (`externally tagged` enums, objects for named structs,
//! transparent newtypes), so JSON produced by the real crates parses here
//! and vice versa for the shapes this workspace uses.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A parsed/serializable JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; a vec of pairs so field order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in the widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything with a fraction or exponent.
    Float(f64),
}

/// Error raised when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// The value-model encoding of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of `v`, or explains why the shape is wrong.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------ Value helpers
// (used by the serde_derive shim's generated code)

/// Borrowed view of an object's fields with by-name lookup.
pub struct ObjectRef<'a>(&'a [(String, Value)]);

const NULL: Value = Value::Null;

impl<'a> ObjectRef<'a> {
    /// The field named `name`; absent fields read as `Null` so that
    /// `Option` fields tolerate omission.
    pub fn field(&self, name: &str, ty: &str) -> Result<&'a Value, Error> {
        let _ = ty;
        Ok(self
            .0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&NULL))
    }
}

impl Value {
    /// Asserts this value is `null` (unit structs).
    pub fn expect_null(&self, ty: &str) -> Result<(), Error> {
        match self {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!(
                "expected null for {ty}, got {other:?}"
            ))),
        }
    }

    /// Asserts this value is an array of exactly `n` elements.
    pub fn expect_array(&self, n: usize, ty: &str) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "expected {n} elements for {ty}, got {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "expected an array for {ty}, got {other:?}"
            ))),
        }
    }

    /// Asserts this value is an object.
    pub fn expect_object(&self, ty: &str) -> Result<ObjectRef<'_>, Error> {
        match self {
            Value::Object(pairs) => Ok(ObjectRef(pairs)),
            other => Err(Error::custom(format!(
                "expected an object for {ty}, got {other:?}"
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------------ primitive impls

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} overflows {}", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected a non-negative integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::Number(Number::NegInt(*self as i64))
                } else {
                    Value::Number(Number::PosInt(*self as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::Number(Number::PosInt(n)) => *n as i128,
                    Value::Number(Number::NegInt(n)) => *n as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected an integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} overflows {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(Number::Float(x)) => Ok(*x),
            Value::Number(Number::PosInt(n)) => Ok(*n as f64),
            Value::Number(Number::NegInt(n)) => Ok(*n as f64),
            other => Err(Error::custom(format!("expected a number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected a bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected a string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected an array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.expect_array(2, "2-tuple")?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.expect_array(3, "3-tuple")?;
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for n in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&n.to_value()).unwrap(), n);
        }
        for n in [i64::MIN, -1, 0, i64::MAX] {
            assert_eq!(i64::from_value(&n.to_value()).unwrap(), n);
        }
        assert_eq!(
            Option::<u32>::from_value(&None::<u32>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn missing_object_field_reads_as_null() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        let obj = v.expect_object("T").unwrap();
        assert_eq!(obj.field("b", "T").unwrap(), &Value::Null);
        assert_eq!(
            Option::<bool>::from_value(obj.field("b", "T").unwrap()).unwrap(),
            None
        );
    }
}
