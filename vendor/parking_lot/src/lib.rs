//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), `new` is
//! `const`, and a poisoned lock (a thread panicked while holding it) is
//! transparently recovered rather than propagated — parking_lot has no
//! poisoning at all, so recovering is the faithful translation.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in `const`/`static` contexts).
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock (usable in `const`/`static` contexts).
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        static COUNTER: Mutex<u64> = Mutex::new(0);
        *COUNTER.lock() += 3;
        assert_eq!(*COUNTER.lock(), 3);

        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
