//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the API surface the workspace uses — seeded
//! [`rngs::StdRng`] construction, [`Rng::gen_range`] / [`Rng::gen_bool`],
//! and [`seq::SliceRandom::shuffle`] — with the same reproducibility
//! guarantees (a fixed seed yields a fixed stream). The generator is
//! xoshiro256** seeded through SplitMix64; the exact stream differs from
//! upstream `rand`, which no code in this workspace depends on (seeds are
//! only required to be *stable*, not to match a published stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    /// The workspace's standard seeded generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0..1 << 40)).collect();
        let mut d = StdRng::seed_from_u64(43);
        let again: Vec<u64> = (0..16).map(|_| d.gen_range(0..1 << 40)).collect();
        assert_eq!(same, again);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..u64::MAX / 2);
            assert!(y < u64::MAX / 2);
            let z: i32 = rng.gen_range(0..10);
            assert!((0..10).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is virtually never identity"
        );
    }
}
