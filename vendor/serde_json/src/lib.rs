//! Offline stand-in for `serde_json`.
//!
//! Converts the vendored `serde` crate's [`Value`] model to and from JSON
//! text. Output conventions match upstream serde_json defaults (compact
//! `to_string`, two-space-indented `to_string_pretty`, shortest
//! round-trip float formatting), so fixtures written by either
//! implementation parse under the other for the shapes this workspace
//! uses.

#![forbid(unsafe_code)]

pub use serde::Value;
use serde::{Deserialize, Number, Serialize};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON appended onto `out`, reusing the
/// caller's buffer instead of allocating a fresh `String` per call.
pub fn append_to_string<T: Serialize + ?Sized>(value: &T, out: &mut String) {
    write_value(out, &value.to_value(), None, 0);
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON document"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(x) => out.push_str(&x.to_string()),
        Number::NegInt(x) => out.push_str(&x.to_string()),
        Number::Float(x) if x.is_finite() => {
            // `{:?}` is the shortest representation that round-trips.
            out.push_str(&format!("{x:?}"));
        }
        // serde_json maps non-finite floats to null.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let num = if is_float {
            Number::Float(text.parse().map_err(|_| self.err("bad float"))?)
        } else if text.starts_with('-') {
            Number::NegInt(text.parse().map_err(|_| self.err("bad integer"))?)
        } else {
            Number::PosInt(text.parse().map_err(|_| self.err("bad integer"))?)
        };
        Ok(Value::Number(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let cases = [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("42", Value::Number(Number::PosInt(42))),
            ("-7", Value::Number(Number::NegInt(-7))),
            ("1.5", Value::Number(Number::Float(1.5))),
            ("\"a\\nb\"", Value::String("a\nb".into())),
        ];
        for (text, expected) in cases {
            let got: Value = from_str(text).unwrap();
            assert_eq!(got, expected, "parsing {text}");
            let back: Value = from_str(&to_string(&ValueWrap(expected.clone())).unwrap()).unwrap();
            assert_eq!(back, expected, "round-tripping {text}");
        }
    }

    // Serialize passthrough for raw values in tests.
    struct ValueWrap(Value);
    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"name":"C4","steps":[{"Only":[0,2]},"All"],"n":4,"opt":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&ValueWrap(v.clone())).unwrap(), text);
        let pretty = to_string_pretty(&ValueWrap(v.clone())).unwrap();
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(v, Value::String("Aé😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
