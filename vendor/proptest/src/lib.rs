//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: `proptest!` blocks (with an
//! optional `#![proptest_config(ProptestConfig::with_cases(N))]` inner
//! attribute), integer-range and tuple strategies, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! generated inputs printed, and generation is deterministic (seeded from
//! the test name), so a failure always reproduces under plain
//! `cargo test`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — discard the case, draw another.
    Reject,
    /// `prop_assert!`-style failure with a rendered message.
    Fail(String),
}

/// Runner configuration; only the case count is configurable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator used for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Drives one property: keeps drawing cases until `config.cases` have
/// been accepted, panicking on the first failure.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Seed from the test name so each property gets its own stream but
    // every run of the suite sees the same cases.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }

    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 256;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "property `{name}` rejected too many cases ({attempts} attempts \
             for {accepted}/{} accepted)",
            config.cases
        );
        let mut rng = TestRng::new(seed.wrapping_add(attempts.wrapping_mul(0x9E37_79B9)));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed on attempt {attempts}: {msg}")
            }
        }
    }
}

/// Declares deterministic property tests. Mirrors upstream's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, (a, b) in pairs()) { prop_assert!(x < 100); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_variables, unused_mut)]
                $crate::run_proptest($config, stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),*) $body
            )*
        }
    };
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// Fails the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 5u64..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in 0u64..u64::MAX / 2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < u64::MAX / 2);
        }

        #[test]
        fn tuples_and_assume((a, b) in pair()) {
            prop_assume!(a != 50);
            prop_assert_ne!(a, 50);
            prop_assert!((5..10).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut first = Vec::new();
        super::run_proptest(ProptestConfig::with_cases(10), "det", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        super::run_proptest(ProptestConfig::with_cases(10), "det", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "failed on attempt")]
    fn failures_panic() {
        super::run_proptest(ProptestConfig::with_cases(10), "boom", |_| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }
}
