//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-declaration surface this workspace uses
//! (`criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`) with a simple wall-clock harness: per benchmark it warms
//! up briefly, takes `sample_size` timed samples, and prints
//! `time: [min mean max]` in criterion's familiar format.
//!
//! When cargo invokes a bench binary in *test* mode (`cargo test
//! --benches` passes `--test`), every benchmark body runs exactly once
//! with no timing loop, matching upstream behavior.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark, rendered as `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to each benchmark body; [`Bencher::iter`] runs the timing loop.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, storing one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }

        // Warm-up: find an iteration count that makes one sample take a
        // measurable amount of time (~25ms), without spending more than
        // ~250ms probing.
        let mut iters = 1u64;
        let probe_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(25)
                || probe_start.elapsed() >= Duration::from_millis(250)
            {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }
}

/// Top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes `--test` when benches run under `cargo test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.sample_size(100);
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = self.full_id(&id.into().id);
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut b);
        report(&full, &b);
        self
    }

    /// Benchmarks `f(input)` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream renders summary plots here; we don't).
    pub fn finish(self) {}

    fn full_id(&self, id: &str) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        }
    }
}

fn report(id: &str, b: &Bencher) {
    if b.test_mode {
        println!("Testing {id} ... ok");
        return;
    }
    if b.samples.is_empty() {
        println!("{id}: no samples (Bencher::iter never called)");
        return;
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{id:<40} time:   [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Declares a group runner: `criterion_group!(benches, f1, f2)` defines
/// `fn benches()` that runs each `fi(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_smoke() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        let mut runs = 0;
        g.bench_function("direct", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert_eq!(runs, 1, "test mode runs the body exactly once");
    }

    #[test]
    fn timing_mode_collects_samples() {
        let mut c = Criterion { test_mode: false };
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("spin", |b| b.iter(|| black_box((0..100u64).sum::<u64>())));
        g.finish();
    }
}
