//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` — the only crossbeam API this
//! workspace uses — implemented on top of `std::thread::scope` (stable
//! since 1.63). The signature mirrors crossbeam's: the closure receives
//! `&Scope`, spawned closures receive `&Scope` again (so they can spawn
//! siblings), and `scope` returns `thread::Result<R>`. `std`'s scope
//! re-raises any panic from a thread that was never `join`ed when the
//! scope closes; catching that unwind reproduces crossbeam's "`Err` iff
//! an unobserved child panicked" contract.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    /// Result of a scope or a joined thread: `Err` carries a panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// Handle for spawning threads tied to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned handle to one spawned thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope. The
        /// closure receives the scope again, so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined
    /// before this returns. Returns `Err` if an unjoined thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicU64, Ordering};

        #[test]
        fn spawn_and_join_borrowing_locals() {
            let data = [1u64, 2, 3, 4];
            let total = AtomicU64::new(0);
            let result = scope(|s| {
                let mut handles = Vec::new();
                for chunk in data.chunks(2) {
                    handles.push(s.spawn(|_| chunk.iter().sum::<u64>()));
                }
                for h in handles {
                    total.fetch_add(h.join().unwrap(), Ordering::Relaxed);
                }
                42
            });
            assert_eq!(result.unwrap(), 42);
            assert_eq!(total.load(Ordering::Relaxed), 10);
        }

        #[test]
        fn nested_spawn_from_child() {
            let result = scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7u32).join().unwrap())
                    .join()
                    .unwrap()
            });
            assert_eq!(result.unwrap(), 7);
        }

        #[test]
        fn unjoined_panic_surfaces_as_err() {
            let result = scope(|s| {
                s.spawn::<_, ()>(|_| panic!("child panic"));
            });
            assert!(result.is_err());
        }
    }
}
