//! `ftcolor` — command-line front end for the reproduction.
//!
//! ```text
//! ftcolor color      --alg alg3 --n 16 --input staircase --sched random --timeline
//! ftcolor modelcheck --alg alg2 --ids 0,1,2 --jobs 4
//! ftcolor fuzz       --alg alg2 --ids 0,1,2 --generations 200 --jobs 4
//! ```
//!
//! Subcommands:
//!
//! * `color` — run a coloring algorithm on a ring and print the result
//!   (optionally as a step-by-step timeline);
//! * `modelcheck` — exhaustively explore every schedule on a small ring
//!   and report safety/livelock (witnesses are delta-debugged before
//!   being surfaced);
//! * `fuzz` — evolutionary adversarial schedule search (violating
//!   genomes are likewise shrunk);
//! * `shrink` — delta-debug a witness file to locally minimal form;
//! * `analyze` — lint shipped algorithms against the §2 model contract
//!   and race-check the threaded runtime's event logs;
//! * `netsim` — run registry algorithms on the message-passing network
//!   substrate under a seeded fault plan (drop/delay/duplicate/reorder,
//!   partitions, crashes) with a replayable delivery trace;
//! * `serve` — drive a seeded open-loop fleet of ring instances through
//!   the struct-of-arrays batch engine (`ftcolor-batch`) and print a
//!   deterministic summary (identical at every `--jobs` value); timing
//!   numbers go to stderr;
//! * `cluster` — run a ring of *real OS processes* (one `ftcolor node`
//!   each) under the same fault-plan vocabulary, with plan crashes
//!   executed as SIGKILL and a recorded routed-frame trace that
//!   `--replay` re-verifies offline;
//! * `node` — one cluster node (spawned by the orchestrator; speaks
//!   line-delimited JSON frames on stdin/stdout).

use ftcolor::analyze::{self, render_json, Diagnostic, RuleId};
use ftcolor::checker::shrink::WITNESS_SCHEMA;
use ftcolor::checker::{
    ExploreStats, ExtmemConfig, FuzzConfig, LivelockWitness, ParallelModelChecker, SafetyViolation,
    ScheduleFuzzer, Shrinker, Witness, WitnessFixture,
};
use ftcolor::cluster::{self, ClusterOptions, ClusterTrace};
use ftcolor::core::mis::{mis_violation, EagerMis};
use ftcolor::model::render::{render_ring_coloring, render_schedule, render_timeline};
use ftcolor::model::{inputs, Topology};
use ftcolor::net::{Codec, FaultPlan, NetConfig};
use ftcolor::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "color" => cmd_color(&opts),
        "modelcheck" => cmd_modelcheck(&opts),
        "fuzz" => cmd_fuzz(&opts),
        "shrink" => cmd_shrink(&opts),
        "analyze" => cmd_analyze(&opts),
        "certify" => cmd_certify(&opts),
        "netsim" => cmd_netsim(&opts),
        "serve" => cmd_serve(&opts),
        "cluster" => cmd_cluster(&opts),
        "node" => parse_codec(&opts, &[Codec::Json, Codec::Binary]).and_then(cluster::node_main),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
ftcolor — wait-free coloring of the asynchronous cycle (PODC 2022 reproduction)

USAGE:
  ftcolor color      [--alg A] [--n N | --ids LIST] [--input KIND] [--sched S] [--seed K] [--timeline]
  ftcolor modelcheck [--alg A] [--ids LIST] [--max-configs M] [--jobs J] [--symmetry]
                     [--por] [--extmem DIR [--extmem-budget BYTES] | --bloom BITS]
                     [--format text|json]
  ftcolor fuzz       [--alg A] [--n N | --ids LIST] [--generations G] [--seed K] [--jobs J]
  ftcolor shrink     --in FILE [--out FILE] [--alg A] [--ids LIST] [--bound B] [--jobs J]
  ftcolor analyze    [--alg NAME|all] [--sizes LIST] [--rules CODES] [--format text|json]
  ftcolor certify    [--alg NAME|all] [--domain-colors C] [--rules CODES]
                     [--format text|json]
  ftcolor netsim     [--alg NAME|all] [--n N] [--seed K] [--faults JSON] [--max-time T]
                     [--codec json|binary|typed] [--format text|json] [--emit-trace]
  ftcolor serve      [--alg A] [--n N] [--instances I] [--rate R] [--seed K]
                     [--sched sync|random] [--p P] [--crash-prob P] [--crash-horizon T]
                     [--universe U] [--fuel F] [--quantum Q] [--jobs J]
                     [--format text|json]
  ftcolor cluster    [--alg NAME|all] [--n N] [--seed K] [--faults JSON] [--rto-ms MS]
                     [--pace-ms MS] [--tick-ms MS] [--max-wall-ms MS] [--codec json|binary]
                     [--format text|json] [--emit-trace] [--record FILE] [--replay FILE]
  ftcolor node       [--codec json|binary]
                     (internal: one cluster node, spawned by `ftcolor cluster`;
                     speaks JSON lines or length-prefixed binary frames on
                     stdin/stdout — see README § wire formats)

FLAGS:
  --alg          alg1 | alg2 | alg2p | alg3 | alg3p    (default alg3)
                 (shrink also accepts eagermis; analyze accepts every
                 registry name, `rt` for the runtime race matrix, or
                 `all` for everything)
  --n            ring size (with --input)              (default 8)
  --ids          explicit identifiers, e.g. 5,11,7
  --input        staircase | staircase-poly | random | alternating | organ-pipe
                                                       (default random)
  --sched        sync | rr | random | solo | wave      (default random)
  --seed         u64 seed for inputs/schedules          (default 0)
  --timeline     print the step-by-step execution
  --max-configs  exploration cap for modelcheck        (default 2000000)
  --symmetry     modelcheck: canonicalize configurations under the
                 cycle's rotations/reflections (sound only on cycle
                 topologies — guarded; witnesses are de-canonicalized,
                 verdicts provably match full exploration)
  --por          modelcheck: certified partial-order reduction —
                 enumerate only connected activation subsets (plus the
                 canonical-component staircase for solo-terminating
                 algorithms). Refused unless the algorithm ships a POR
                 certificate that survives a dynamic commutation probe;
                 verdicts provably match full exploration. Composes
                 with --symmetry
  --extmem       modelcheck: spill the visited-set key→id map to sorted
                 run files under DIR (delayed duplicate detection);
                 outcomes stay bit-identical to in-RAM runs. The node
                 arena and edge lists remain in RAM
  --extmem-budget  RAM budget in bytes for the --extmem insertion
                 buffer before each spill                (default 268435456)
  --bloom        modelcheck: replace the visited-set with a BITS-bit
                 Bloom filter. LOSSY falsification sweep: reported
                 safety violations are sound and replayable, but
                 livelock detection is off and a clean run certifies
                 nothing (output carries lossy=true and the estimated
                 false-positive budget)
  --generations  fuzzer generations                    (default 150)
  --jobs         worker threads; 0 = all CPUs           (default 1)
                 results are identical for every value
  --in           shrink input: a witness fixture ({schema, alg, ids, raw,
                 shrunk}), a bare safety violation ({description, schedule}),
                 a bare livelock witness ({prefix, cycle}), or a trace
                 ({n, steps}); fixtures carry --alg/--ids themselves
  --out          write the shrunk result as a witness fixture JSON
  --bound        shrink a trace as an activation-bound overrun (> B)
  --sizes        analyze: cycle sizes to lint on, e.g. 5,8 (default 5,8)
  --rules        analyze/certify: keep only these rule codes, e.g.
                 FTC-SWMR-001,FTC-RT-104 (default: all rules)
  --domain-colors certify: candidate-color lattice bound for the
                 abstract view domains (default 5, the paper's palette;
                 values below an algorithm's claim breach the domain)
  --format       analyze/netsim/modelcheck: text | json (default text)
  --faults       netsim: inline fault-plan JSON, e.g.
                 '{\"drop\":0.1,\"crashes\":[{\"node\":2,\"at\":5}]}'
                 (default: the clean plan — no faults)
  --max-time     netsim: logical-time budget            (default 100000)
  --codec        netsim/cluster: wire encoding for frames in flight
                 (default json). `binary` is the compact length-prefixed
                 format; `typed` (netsim only) skips byte serialization
                 inside the router while charging fault accounting the
                 measured binary size. Verdicts and traces are identical
                 across codecs — only byte encodings and wall time differ
  --instances    serve: total instances to admit        (default 1000;
                 1 = a single materialized ring, the n=10M regime)
  --rate         serve: arrivals per sweep round        (default 64)
  --p            serve: random-subset inclusion prob     (default 0.5)
  --crash-prob   serve: per-instance crash-noise prob    (default 0)
  --crash-horizon serve: latest noise crash time         (default 8)
  --universe     serve: identifier universe size         (default 64)
  --fuel         serve: per-instance step budget         (default 100000)
  --quantum      serve: schedule steps per sweep visit   (default 8)
  --emit-trace   netsim/cluster: include the full trace in the output
  --rto-ms       cluster: node retransmit timeout in ms  (default 25)
  --pace-ms      cluster: node pause per round in ms     (default 15;
                 nonzero stretches runs so SIGKILLs land mid-protocol)
  --tick-ms      cluster: wall ms per fault-plan tick    (default 5)
  --max-wall-ms  cluster: wall-clock cap before the run times out and
                 reports stalls                          (default 30000)
  --record       cluster: write the recorded trace to FILE (pretty JSON)
  --replay       cluster: skip the live run; re-verify a recorded trace
                 offline against in-process node replicas
";

/// Parses `--jobs` (default 1 worker; `0` means all CPUs downstream).
fn parse_jobs(opts: &HashMap<String, String>) -> Result<usize, String> {
    get(opts, "jobs", "1")
        .parse()
        .map_err(|e| format!("bad --jobs: {e}"))
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{a}`"));
        };
        let value = if matches!(key, "timeline" | "emit-trace" | "symmetry" | "por") {
            "true".to_string()
        } else {
            it.next()
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone()
        };
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

fn get<'a>(opts: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    opts.get(key).map_or(default, String::as_str)
}

/// Parses `--codec` against the codecs a subcommand supports (the
/// cluster's real pipes carry bytes, so `typed` is simulator-only).
fn parse_codec(opts: &HashMap<String, String>, allowed: &[Codec]) -> Result<Codec, String> {
    let name = get(opts, "codec", "json");
    match Codec::parse(name) {
        Some(c) if allowed.contains(&c) => Ok(c),
        Some(c) => Err(format!("--codec {} is not supported here", c.name())),
        None => Err(format!(
            "unknown --codec `{name}` (expected {})",
            allowed
                .iter()
                .map(|c| c.name())
                .collect::<Vec<_>>()
                .join("|")
        )),
    }
}

fn parse_ids(opts: &HashMap<String, String>) -> Result<Vec<u64>, String> {
    if let Some(list) = opts.get("ids") {
        let ids: Result<Vec<u64>, _> = list.split(',').map(|s| s.trim().parse()).collect();
        return ids.map_err(|e| format!("bad --ids: {e}"));
    }
    let n: usize = get(opts, "n", "8")
        .parse()
        .map_err(|e| format!("bad --n: {e}"))?;
    let seed: u64 = get(opts, "seed", "0")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    Ok(match get(opts, "input", "random") {
        "staircase" => inputs::staircase(n),
        "staircase-poly" => inputs::staircase_poly(n),
        "alternating" => inputs::alternating(n),
        "organ-pipe" => inputs::organ_pipe(n),
        "random" => inputs::random_unique(n, (n as u64).pow(3).max(64), seed),
        other => return Err(format!("unknown --input `{other}`")),
    })
}

fn make_schedule(kind: &str, n: usize, seed: u64) -> Result<Box<dyn Schedule>, String> {
    Ok(match kind {
        "sync" => Box::new(Synchronous::new()),
        "rr" => Box::new(RoundRobin::new()),
        "random" => Box::new(RandomSubset::new(seed, 0.5)),
        "solo" => Box::new(SoloRunner::ascending(n)),
        "wave" => Box::new(Wave::new(n, 3, 2)),
        other => return Err(format!("unknown --sched `{other}`")),
    })
}

/// Runs one coloring algorithm generically and prints the outcome.
fn run_and_print<A>(
    alg: &A,
    ids: &[u64],
    sched_kind: &str,
    seed: u64,
    timeline: bool,
    cell: impl Fn(&A::Reg) -> String,
) -> Result<(), String>
where
    A: Algorithm<Input = u64>,
    A::Output: std::fmt::Debug,
{
    let topo = Topology::cycle(ids.len()).map_err(|e| e.to_string())?;
    let mut exec = Execution::new(alg, &topo, ids.to_vec());
    if timeline {
        let sched = make_schedule(sched_kind, ids.len(), seed)?;
        let text = render_timeline(&mut exec, sched, 100_000, cell);
        println!("{text}");
    } else {
        let sched = make_schedule(sched_kind, ids.len(), seed)?;
        exec.run(sched, 10_000_000).map_err(|e| e.to_string())?;
    }
    println!("coloring: {}", render_ring_coloring(exec.outputs()));
    println!(
        "max activations: {}",
        topo.nodes()
            .map(|p| exec.activation_count(p))
            .max()
            .unwrap_or(0)
    );
    let proper = topo.is_proper_partial_coloring(exec.outputs());
    println!("proper: {proper}");
    if !proper {
        return Err("output is not a proper coloring (bug!)".into());
    }
    Ok(())
}

fn cmd_color(opts: &HashMap<String, String>) -> Result<(), String> {
    let ids = parse_ids(opts)?;
    let seed: u64 = get(opts, "seed", "0")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let sched = get(opts, "sched", "random");
    let timeline = opts.contains_key("timeline");
    println!("ids: {ids:?}");
    match get(opts, "alg", "alg3") {
        "alg1" => run_and_print(&SixColoring, &ids, sched, seed, timeline, |r| {
            format!("{}", r.color)
        }),
        "alg2" => run_and_print(&FiveColoring, &ids, sched, seed, timeline, |r| {
            format!("({},{})", r.a, r.b)
        }),
        "alg2p" => run_and_print(&FiveColoringPatched, &ids, sched, seed, timeline, |r| {
            format!("({},{})c{}", r.a, r.b, r.c)
        }),
        "alg3" => run_and_print(&FastFiveColoring, &ids, sched, seed, timeline, |r| {
            format!("x{}({},{})", r.x, r.a, r.b)
        }),
        "alg3p" => run_and_print(&FastFiveColoringPatched, &ids, sched, seed, timeline, |r| {
            format!("x{}({},{})c{}", r.x, r.a, r.b, r.c)
        }),
        other => Err(format!("unknown --alg `{other}`")),
    }
}

fn coloring_safety(topo: &Topology, outs: &[Option<u64>]) -> Option<String> {
    if let Some((a, b)) = topo.first_conflict(outs) {
        return Some(format!("conflict on edge {a}-{b}"));
    }
    outs.iter()
        .flatten()
        .find(|&&c| c > 4)
        .map(|c| format!("color {c} outside the palette"))
}

/// Symmetry-invariant part of the modelcheck JSON output: counts shrink
/// under `--symmetry`, these booleans must not — CI diffs this object
/// between the two modes.
#[derive(serde::Serialize)]
struct VerdictJson {
    safety_violated: bool,
    livelock_found: bool,
    truncated: bool,
}

/// `ftcolor modelcheck --format json` payload.
#[derive(serde::Serialize)]
struct ModelcheckJson {
    alg: String,
    ids: Vec<u64>,
    symmetry: bool,
    por: bool,
    lossy: bool,
    jobs: usize,
    verdict: VerdictJson,
    safety_description: Option<String>,
    configs: usize,
    edges: usize,
    fully_terminated_configs: usize,
    stats: ExploreStats,
}

fn cmd_modelcheck(opts: &HashMap<String, String>) -> Result<(), String> {
    let ids = parse_ids(opts)?;
    if ids.len() > 7 {
        return Err("modelcheck needs a small instance (≤ 7 processes)".into());
    }
    let cap: usize = get(opts, "max-configs", "2000000")
        .parse()
        .map_err(|e| format!("bad --max-configs: {e}"))?;
    let jobs = parse_jobs(opts)?;
    let symmetry = opts.contains_key("symmetry");
    let por = opts.contains_key("por");
    let extmem = opts.get("extmem").map(|dir| -> Result<_, String> {
        let ram_budget_bytes = get(opts, "extmem-budget", "268435456")
            .parse()
            .map_err(|e| format!("bad --extmem-budget: {e}"))?;
        Ok(ExtmemConfig {
            dir: dir.into(),
            ram_budget_bytes,
        })
    });
    let extmem = extmem.transpose()?;
    let bloom: Option<u64> = opts
        .get("bloom")
        .map(|b| b.parse().map_err(|e| format!("bad --bloom: {e}")))
        .transpose()?;
    if extmem.is_some() && bloom.is_some() {
        return Err("--extmem and --bloom are mutually exclusive".into());
    }
    let format = get(opts, "format", "text");
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown --format `{format}`"));
    }
    let alg_name = get(opts, "alg", "alg2").to_string();
    let topo = Topology::cycle(ids.len()).map_err(|e| e.to_string())?;

    macro_rules! check {
        ($alg:expr, $safety:expr) => {{
            let safety = $safety;
            let mut mc = ParallelModelChecker::new($alg, &topo, ids.clone())
                .with_max_configs(cap)
                .with_jobs(jobs)
                .with_symmetry(symmetry)
                .with_por(por);
            if let Some(cfg) = extmem.clone() {
                mc = mc.with_extmem(cfg);
            }
            if let Some(bits) = bloom {
                mc = mc.with_bloom(bits);
            }
            let o = mc.explore(&safety).map_err(|e| e.to_string())?;
            if format == "json" {
                let j = ModelcheckJson {
                    alg: alg_name,
                    ids: ids.clone(),
                    symmetry,
                    por,
                    lossy: o.lossy,
                    jobs,
                    verdict: VerdictJson {
                        safety_violated: o.safety_violation.is_some(),
                        livelock_found: o.livelock.is_some(),
                        truncated: o.truncated,
                    },
                    safety_description: o.safety_violation.as_ref().map(|v| v.description.clone()),
                    configs: o.configs,
                    edges: o.edges,
                    fully_terminated_configs: o.fully_terminated_configs,
                    stats: o.stats.clone(),
                };
                println!(
                    "{}",
                    serde_json::to_string_pretty(&j).map_err(|e| e.to_string())?
                );
                return Ok(());
            }
            println!("{o}");
            println!("{}", o.stats);
            let sh = Shrinker::new($alg, &topo, ids.clone()).with_jobs(jobs);
            if let Some(v) = &o.safety_violation {
                println!("safety violation: {}", v.description);
                println!("{}", render_schedule(&v.schedule));
                if let Some(s) = sh.shrink_safety(&v.schedule, &safety) {
                    println!(
                        "shrunk witness ({} -> {} activation slots, {} replays):",
                        s.stats.original_slots, s.stats.shrunk_slots, s.stats.replays
                    );
                    println!("{}", render_schedule(&s.schedule));
                }
            }
            if let Some(lw) = &o.livelock {
                println!("livelock witness (prefix then repeat cycle):");
                println!("{}", render_schedule(&lw.prefix));
                println!("-- cycle --");
                println!("{}", render_schedule(&lw.cycle));
                if let Some(s) = sh.shrink_livelock(lw) {
                    println!(
                        "shrunk witness ({} -> {} activation slots, {} replays):",
                        s.stats.original_slots, s.stats.shrunk_slots, s.stats.replays
                    );
                    println!("{}", render_schedule(&s.witness.prefix));
                    println!("-- cycle --");
                    println!("{}", render_schedule(&s.witness.cycle));
                }
            }
        }};
    }
    match get(opts, "alg", "alg2") {
        "alg1" => check!(&SixColoring, |t: &Topology, o: &[Option<PairColor>]| {
            t.first_conflict(o)
                .map(|(a, b)| format!("conflict {a}-{b}"))
        }),
        "alg2" => check!(&FiveColoring, coloring_safety),
        "alg2p" => check!(&FiveColoringPatched, coloring_safety),
        "alg3p" => check!(&FastFiveColoringPatched, coloring_safety),
        "alg3" => check!(&FastFiveColoring, coloring_safety),
        other => return Err(format!("unknown --alg `{other}`")),
    }
    Ok(())
}

fn cmd_fuzz(opts: &HashMap<String, String>) -> Result<(), String> {
    let ids = parse_ids(opts)?;
    let seed: u64 = get(opts, "seed", "0")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let generations: usize = get(opts, "generations", "150")
        .parse()
        .map_err(|e| format!("bad --generations: {e}"))?;
    let jobs = parse_jobs(opts)?;
    let topo = Topology::cycle(ids.len()).map_err(|e| e.to_string())?;
    let config = FuzzConfig {
        generations,
        seed,
        jobs,
        ..FuzzConfig::default()
    };

    macro_rules! fuzz {
        ($alg:expr) => {{
            let fz = ScheduleFuzzer::new($alg, &topo, ids.clone(), config.clone());
            let report = fz.run(coloring_safety);
            println!(
                "best score: {} over {} executions",
                report.best_score, report.evaluated
            );
            if report.best_score >= 1000 {
                println!("starvation found! best schedule:");
                println!("{}", render_schedule(&report.best_schedule));
            }
            if let Some(v) = &report.safety_violation {
                println!("SAFETY VIOLATION: {v}");
                if let Some(genome) = &report.violating_schedule {
                    let sh = Shrinker::new($alg, &topo, ids.clone()).with_jobs(jobs);
                    if let Some(s) = sh.shrink_safety(genome, &coloring_safety) {
                        println!(
                            "shrunk witness ({} -> {} activation slots, {} replays):",
                            s.stats.original_slots, s.stats.shrunk_slots, s.stats.replays
                        );
                        println!("{}", render_schedule(&s.schedule));
                    }
                }
            }
        }};
    }
    match get(opts, "alg", "alg2") {
        "alg2" => fuzz!(&FiveColoring),
        "alg2p" => fuzz!(&FiveColoringPatched),
        "alg3" => fuzz!(&FastFiveColoring),
        "alg3p" => fuzz!(&FastFiveColoringPatched),
        other => return Err(format!("unknown --alg `{other}`")),
    }
    Ok(())
}

/// What `--in` turned out to hold: a ready witness, or a bare schedule
/// (trace) whose violation class is determined by `--bound`/the
/// algorithm's safety predicate.
enum ShrinkInput {
    Witness(Witness),
    Schedule(Vec<ActivationSet>),
}

fn cmd_shrink(opts: &HashMap<String, String>) -> Result<(), String> {
    let path = opts.get("in").ok_or("shrink needs --in <file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: serde::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not JSON: {e}"))?;
    let serde::Value::Object(pairs) = &value else {
        return Err(format!("{path} must hold a JSON object"));
    };
    let has = |k: &str| pairs.iter().any(|(key, _)| key == k);

    // Shape-detect the four accepted formats; fixtures are
    // self-describing, everything else takes --alg/--ids from the flags.
    let (alg_name, ids, input) = if has("schema") {
        let fx: WitnessFixture = serde_json::from_value(value.clone())
            .map_err(|e| format!("{path} is not a witness fixture: {e}"))?;
        (fx.alg, fx.ids, ShrinkInput::Witness(fx.raw))
    } else {
        let alg = get(opts, "alg", "alg2").to_string();
        let ids = parse_ids(opts)?;
        let input = if has("description") {
            let v: SafetyViolation = serde_json::from_value(value.clone())
                .map_err(|e| format!("{path} is not a safety violation: {e}"))?;
            ShrinkInput::Witness(Witness::Safety(v))
        } else if has("prefix") {
            let lw: LivelockWitness = serde_json::from_value(value.clone())
                .map_err(|e| format!("{path} is not a livelock witness: {e}"))?;
            ShrinkInput::Witness(Witness::Livelock(lw))
        } else if has("steps") {
            let tr: Trace = serde_json::from_value(value.clone())
                .map_err(|e| format!("{path} is not a trace: {e}"))?;
            ShrinkInput::Schedule(tr.into_steps())
        } else {
            return Err(format!(
                "{path}: unrecognized witness shape (expected a fixture, a safety \
                 violation, a livelock witness, or a trace)"
            ));
        };
        (alg, ids, input)
    };

    let jobs = parse_jobs(opts)?;
    let bound: Option<u64> = match opts.get("bound") {
        Some(b) => Some(b.parse().map_err(|e| format!("bad --bound: {e}"))?),
        None => None,
    };
    let out = opts.get("out").map(String::as_str);

    match alg_name.as_str() {
        "alg1" => shrink_and_report(
            &SixColoring,
            &alg_name,
            &ids,
            jobs,
            bound,
            &input,
            out,
            |t: &Topology, o: &[Option<PairColor>]| {
                t.first_conflict(o)
                    .map(|(a, b)| format!("conflict {a}-{b}"))
            },
        ),
        "alg2" => shrink_and_report(
            &FiveColoring,
            &alg_name,
            &ids,
            jobs,
            bound,
            &input,
            out,
            coloring_safety,
        ),
        "alg2p" => shrink_and_report(
            &FiveColoringPatched,
            &alg_name,
            &ids,
            jobs,
            bound,
            &input,
            out,
            coloring_safety,
        ),
        "alg3" => shrink_and_report(
            &FastFiveColoring,
            &alg_name,
            &ids,
            jobs,
            bound,
            &input,
            out,
            coloring_safety,
        ),
        "alg3p" => shrink_and_report(
            &FastFiveColoringPatched,
            &alg_name,
            &ids,
            jobs,
            bound,
            &input,
            out,
            coloring_safety,
        ),
        "eagermis" => shrink_and_report(
            &EagerMis,
            &alg_name,
            &ids,
            jobs,
            bound,
            &input,
            out,
            mis_violation,
        ),
        other => Err(format!("unknown --alg `{other}`")),
    }
}

/// Shrinks `input` on `alg`, prints the minimal witness, replay-verifies
/// it, and optionally writes a schema-v2 fixture to `out`.
#[allow(clippy::too_many_arguments)]
fn shrink_and_report<A>(
    alg: &A,
    alg_name: &str,
    ids: &[u64],
    jobs: usize,
    bound: Option<u64>,
    input: &ShrinkInput,
    out: Option<&str>,
    safety: impl Fn(&Topology, &[Option<A::Output>]) -> Option<String> + Sync,
) -> Result<(), String>
where
    A: Algorithm<Input = u64> + Sync,
    A::State: Eq + std::hash::Hash,
    A::Reg: Eq + std::hash::Hash,
    A::Output: Eq + std::hash::Hash,
{
    let topo = Topology::cycle(ids.len()).map_err(|e| e.to_string())?;
    let sh = Shrinker::new(alg, &topo, ids.to_vec()).with_jobs(jobs);
    let (raw, shrunk, stats) = match input {
        ShrinkInput::Witness(w) => {
            let (s, stats) = sh.shrink_witness(w, &safety).ok_or(
                "input witness does not reproduce its violation class on this \
                 instance (check --alg/--ids)",
            )?;
            (w.clone(), s, stats)
        }
        ShrinkInput::Schedule(steps) => match bound {
            Some(b) => {
                let s = sh
                    .shrink_overrun(steps, b)
                    .ok_or(format!("trace never exceeds the bound {b}"))?;
                let desc = format!("activation bound overrun (> {b})");
                (
                    Witness::Safety(SafetyViolation {
                        description: desc.clone(),
                        schedule: steps.clone(),
                    }),
                    Witness::Safety(SafetyViolation {
                        description: desc,
                        schedule: s.schedule,
                    }),
                    s.stats,
                )
            }
            None => {
                let s = sh.shrink_safety(steps, &safety).ok_or(
                    "trace does not reproduce a safety violation (pass --bound to \
                     shrink an activation-bound overrun instead)",
                )?;
                let desc = s.description.clone().unwrap_or_default();
                (
                    Witness::Safety(SafetyViolation {
                        description: desc.clone(),
                        schedule: steps.clone(),
                    }),
                    Witness::Safety(SafetyViolation {
                        description: desc,
                        schedule: s.schedule,
                    }),
                    s.stats,
                )
            }
        },
    };
    // Independent replay check of the shrunk form (overrun witnesses are
    // outside `reproduces`' two classes; shrink_overrun verified them).
    if bound.is_none() && !sh.reproduces(&shrunk, &safety) {
        return Err("internal error: shrunk witness failed replay verification".into());
    }
    let class = match &shrunk {
        Witness::Safety(_) => "safety",
        Witness::Livelock(_) => "livelock",
    };
    println!("class: {class}");
    println!(
        "activation slots: {} -> {} ({} candidate replays)",
        stats.original_slots, stats.shrunk_slots, stats.replays
    );
    match &shrunk {
        Witness::Safety(v) => {
            println!("description: {}", v.description);
            println!("{}", render_schedule(&v.schedule));
        }
        Witness::Livelock(lw) => {
            println!("{}", render_schedule(&lw.prefix));
            println!("-- cycle --");
            println!("{}", render_schedule(&lw.cycle));
        }
    }
    if let Some(out) = out {
        let fixture = WitnessFixture {
            schema: WITNESS_SCHEMA.to_string(),
            alg: alg_name.to_string(),
            ids: ids.to_vec(),
            raw,
            shrunk,
        };
        let json = serde_json::to_string_pretty(&fixture).map_err(|e| e.to_string())?;
        std::fs::write(out, json + "\n").map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

/// `ftcolor analyze`: run the contract linter over registry entries
/// (and/or the runtime race matrix) and exit nonzero on any unwaived
/// diagnostic — the same gate CI enforces.
fn cmd_analyze(opts: &HashMap<String, String>) -> Result<(), String> {
    let sizes: Vec<usize> = get(opts, "sizes", "5,8")
        .split(',')
        .map(|s| s.trim().parse().map_err(|e| format!("bad --sizes: {e}")))
        .collect::<Result<_, _>>()?;
    let rules: Option<Vec<RuleId>> = match opts.get("rules") {
        Some(list) => Some(
            list.split(',')
                .map(|c| {
                    RuleId::from_code(c.trim())
                        .ok_or_else(|| format!("unknown rule code `{}`", c.trim()))
                })
                .collect::<Result<_, _>>()?,
        ),
        None => None,
    };
    let alg = get(opts, "alg", "all");
    let cfg = analyze::LintConfig::default();

    let mut diags: Vec<Diagnostic> = Vec::new();
    if alg == "all" {
        for report in analyze::analyze_all(&sizes, &cfg) {
            diags.extend(report.diagnostics);
        }
    } else if alg != "rt" {
        let report = analyze::analyze_alg(alg, &sizes, &cfg).ok_or_else(|| {
            format!(
                "unknown --alg `{alg}` (expected one of {}, `rt`, or `all`)",
                analyze::SHIPPED.join(", ")
            )
        })?;
        diags.extend(report.diagnostics);
    }
    if matches!(alg, "all" | "rt") {
        diags.extend(analyze::race_matrix());
    }
    if let Some(rules) = &rules {
        diags.retain(|d| rules.contains(&d.rule));
    }

    let unwaived = diags.iter().filter(|d| !d.waived).count();
    match get(opts, "format", "text") {
        "json" => println!("{}", render_json(&diags)),
        "text" => {
            for d in &diags {
                println!("{}", d.render());
            }
            println!(
                "analyze: {} diagnostic(s), {unwaived} unwaived",
                diags.len()
            );
        }
        other => return Err(format!("unknown --format `{other}`")),
    }
    if unwaived > 0 {
        return Err(format!("{unwaived} unwaived diagnostic(s)"));
    }
    Ok(())
}

/// `ftcolor certify`: statically certify registry algorithms by
/// abstract interpretation over their certified view domains, and exit
/// nonzero on any unwaived finding — the same gate CI enforces.
fn cmd_certify(opts: &HashMap<String, String>) -> Result<(), String> {
    let colors: u64 = get(opts, "domain-colors", "5")
        .parse()
        .map_err(|e| format!("bad --domain-colors: {e}"))?;
    let rules: Option<Vec<RuleId>> = match opts.get("rules") {
        Some(list) => Some(
            list.split(',')
                .map(|c| {
                    RuleId::from_code(c.trim())
                        .ok_or_else(|| format!("unknown rule code `{}`", c.trim()))
                })
                .collect::<Result<_, _>>()?,
        ),
        None => None,
    };
    let alg = get(opts, "alg", "all");
    let cfg = analyze::CertifyConfig::default();

    let mut reports = if alg == "all" {
        analyze::certify_all(colors, &cfg)
    } else {
        vec![analyze::certify_alg(alg, colors, &cfg).ok_or_else(|| {
            format!(
                "unknown --alg `{alg}` (expected one of {}, or `all`)",
                analyze::SHIPPED.join(", ")
            )
        })?]
    };
    if let Some(rules) = &rules {
        for r in &mut reports {
            r.diagnostics.retain(|d| rules.contains(&d.rule));
        }
    }

    let unwaived: usize = reports.iter().map(|r| r.unwaived().count()).sum();
    match get(opts, "format", "text") {
        "json" => println!("{}", analyze::render_cert_json(&reports)),
        "text" => {
            for r in &reports {
                for d in &r.diagnostics {
                    println!("{}", d.render());
                }
                let s = &r.stats;
                let verdict = if s.reachable_states == 0 {
                    "not certifiable (see waived finding)".to_string()
                } else {
                    let solo = match s.solo_bound {
                        Some(b) => format!("solo bound {b}"),
                        None => "no solo bound".to_string(),
                    };
                    format!(
                        "{} states ({} decided), {} transitions, {} view regs, {solo}",
                        s.reachable_states, s.decided_states, s.transitions, s.view_regs
                    )
                };
                println!("certify {}: {verdict}", r.name);
            }
            println!("certify: {unwaived} unwaived finding(s)");
        }
        other => return Err(format!("unknown --format `{other}`")),
    }
    if unwaived > 0 {
        return Err(format!("{unwaived} unwaived finding(s)"));
    }
    Ok(())
}

/// `ftcolor netsim`: run registry algorithms on the message-passing
/// network substrate under a seeded fault plan and report the outcome.
/// Exits nonzero on an oracle violation, a palette violation, a race
/// diagnostic, or an unexpected stall — documented-flaw entries (the
/// `termination-only` oracle) are exempt from the stall check only,
/// never from safety.
fn cmd_netsim(opts: &HashMap<String, String>) -> Result<(), String> {
    let n: usize = get(opts, "n", "8")
        .parse()
        .map_err(|e| format!("bad --n: {e}"))?;
    let seed: u64 = get(opts, "seed", "0")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let max_time: u64 = get(opts, "max-time", "100000")
        .parse()
        .map_err(|e| format!("bad --max-time: {e}"))?;
    let plan: FaultPlan = match opts.get("faults") {
        Some(text) => serde_json::from_str(text).map_err(|e| format!("bad --faults: {e}"))?,
        None => FaultPlan::default(),
    };
    let emit_trace = opts.contains_key("emit-trace");
    let codec = parse_codec(opts, &[Codec::Json, Codec::Binary, Codec::Typed])?;
    let cfg = NetConfig::new(seed)
        .max_time(max_time)
        .record_events(true)
        .codec(codec);

    let alg = get(opts, "alg", "all");
    let names: Vec<&str> = if alg == "all" {
        analyze::SHIPPED.to_vec()
    } else {
        vec![alg]
    };

    let mut failures: Vec<String> = Vec::new();
    let mut items: Vec<serde::Value> = Vec::new();
    for name in names {
        let out = analyze::net_run(name, n, seed, &plan, &cfg).ok_or_else(|| {
            format!(
                "unknown --alg `{name}` (expected one of {}, or `all`)",
                analyze::SHIPPED.join(", ")
            )
        })?;
        let s = &out.summary;
        if !s.valid {
            failures.push(format!("{name}: oracle violation ({})", s.oracle));
        }
        if !s.palette_ok {
            failures.push(format!("{name}: color outside the declared palette"));
        }
        if s.race_diags > 0 {
            failures.push(format!("{name}: {} race diagnostic(s)", s.race_diags));
        }
        if !s.all_correct_returned && s.oracle != "termination-only" {
            failures.push(format!("{name}: stalled processes {:?}", s.stalled));
        }
        match get(opts, "format", "text") {
            "json" => {
                let mut v = serde_json::to_value(s).map_err(|e| e.to_string())?;
                if emit_trace {
                    let t = serde_json::to_value(&out.trace).map_err(|e| e.to_string())?;
                    if let serde::Value::Object(pairs) = &mut v {
                        pairs.push(("trace".to_string(), t));
                    }
                }
                items.push(v);
            }
            "text" => {
                println!(
                    "{name}: n={} seed={} oracle={} valid={} palette_ok={} returned={}",
                    s.n, s.seed, s.oracle, s.valid, s.palette_ok, s.all_correct_returned
                );
                println!(
                    "  colors: {:?}  crashed: {:?}  stalled: {:?}",
                    s.colors, s.crashed, s.stalled
                );
                println!(
                    "  rounds_max={} time={} sent={} delivered={} dropped={} \
                     duplicated={} retransmits={}",
                    s.rounds_max,
                    s.time,
                    s.stats.sent,
                    s.stats.delivered,
                    s.stats.dropped + s.stats.partition_dropped,
                    s.stats.duplicated,
                    s.stats.retransmits
                );
                println!("  trace: {} sends, digest {}", s.trace_len, s.trace_digest);
                println!(
                    "  wire: codec={} encoded={} decoded={} bytes={} pool {}/{} hit",
                    s.wire_codec,
                    s.wire_frames_encoded,
                    s.wire_frames_decoded,
                    s.wire_bytes,
                    s.wire_pool_hits,
                    s.wire_pool_hits + s.wire_pool_misses
                );
                if emit_trace {
                    println!("  {}", out.trace.to_json());
                }
            }
            other => return Err(format!("unknown --format `{other}`")),
        }
    }
    if get(opts, "format", "text") == "json" {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde::Value::Array(items)).map_err(|e| e.to_string())?
        );
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(())
}

/// `ftcolor cluster`: run registry algorithms on a ring of real node
/// processes under a fault plan (crashes become SIGKILL), or — with
/// `--replay` — re-verify a recorded trace offline. Exits nonzero on a
/// coloring violation, a palette violation, or an unexpected stall.
fn cmd_cluster(opts: &HashMap<String, String>) -> Result<(), String> {
    let format = get(opts, "format", "text");
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown --format `{format}`"));
    }

    if let Some(path) = opts.get("replay") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let trace = ClusterTrace::from_json(&text)?;
        let summary = cluster::cluster_replay(&trace)?;
        print_cluster_summary(&summary, format, "replay", None)?;
        return cluster_verdict(&[summary]);
    }

    let n: usize = get(opts, "n", "5")
        .parse()
        .map_err(|e| format!("bad --n: {e}"))?;
    let seed: u64 = get(opts, "seed", "0")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let plan: FaultPlan = match opts.get("faults") {
        Some(text) => serde_json::from_str(text).map_err(|e| format!("bad --faults: {e}"))?,
        None => FaultPlan::default(),
    };
    let parse_ms = |key: &str, default: &str| -> Result<u64, String> {
        get(opts, key, default)
            .parse()
            .map_err(|e| format!("bad --{key}: {e}"))
    };
    let copts = ClusterOptions {
        rto_ms: parse_ms("rto-ms", "25")?,
        pace_ms: parse_ms("pace-ms", "15")?,
        tick_ms: parse_ms("tick-ms", "5")?.max(1),
        max_wall_ms: parse_ms("max-wall-ms", "30000")?,
        codec: parse_codec(opts, &[Codec::Json, Codec::Binary])?,
        ..ClusterOptions::default()
    };
    let emit_trace = opts.contains_key("emit-trace");

    let alg = get(opts, "alg", "alg2p");
    let names: Vec<&str> = if alg == "all" {
        cluster::CLUSTER_ALGS.to_vec()
    } else {
        vec![alg]
    };

    let mut summaries = Vec::new();
    for name in names {
        let outcome = cluster::cluster_run(name, n, seed, &plan, &copts)?;
        if let Some(path) = opts.get("record") {
            std::fs::write(path, outcome.trace.to_json_pretty() + "\n")
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        let trace_json = emit_trace.then(|| outcome.trace.to_json());
        print_cluster_summary(&outcome.summary, format, "live", trace_json.as_deref())?;
        summaries.push(outcome.summary);
    }
    cluster_verdict(&summaries)
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    fn num<T: std::str::FromStr>(
        opts: &HashMap<String, String>,
        key: &str,
        default: &str,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        get(opts, key, default)
            .parse()
            .map_err(|e| format!("bad --{key}: {e}"))
    }
    let cfg = ftcolor::batch::ServiceConfig {
        n: num(opts, "n", "5")?,
        instances: num(opts, "instances", "1000")?,
        rate: num(opts, "rate", "64")?,
        seed: num(opts, "seed", "0")?,
        sync: match get(opts, "sched", "random") {
            "sync" => true,
            "random" => false,
            other => return Err(format!("serve supports --sched sync|random, got `{other}`")),
        },
        p: num(opts, "p", "0.5")?,
        crash_prob: num(opts, "crash-prob", "0")?,
        crash_horizon: num(opts, "crash-horizon", "8")?,
        universe: num(opts, "universe", "64")?,
        fuel: num(opts, "fuel", "100000")?,
        quantum: num(opts, "quantum", "8")?,
        jobs: parse_jobs(opts)?,
    };
    if cfg.n < 3 {
        return Err("serve needs --n >= 3 (no smaller cycle exists)".into());
    }
    if cfg.instances == 0 {
        return Err("serve needs --instances >= 1".into());
    }
    if cfg.instances > 1 && cfg.universe < cfg.n as u64 {
        return Err(format!(
            "--universe {} cannot hold {} distinct identifiers",
            cfg.universe, cfg.n
        ));
    }
    if cfg.rate.is_nan() || cfg.rate <= 0.0 {
        return Err("serve needs --rate > 0".into());
    }
    if cfg.quantum == 0 {
        return Err("serve needs --quantum >= 1".into());
    }
    let format = get(opts, "format", "text").to_string();
    match get(opts, "alg", "alg2p") {
        "alg1" => serve_with(
            &SixColoring,
            "alg1",
            6,
            |c: &PairColor| usize::try_from(c.flat_index()).expect("flat index fits usize"),
            &cfg,
            &format,
        ),
        "alg2" => serve_with(&FiveColoring, "alg2", 5, flat_u64, &cfg, &format),
        "alg2p" => serve_with(&FiveColoringPatched, "alg2p", 5, flat_u64, &cfg, &format),
        "alg3" => serve_with(&FastFiveColoring, "alg3", 5, flat_u64, &cfg, &format),
        "alg3p" => serve_with(
            &FastFiveColoringPatched,
            "alg3p",
            5,
            flat_u64,
            &cfg,
            &format,
        ),
        other => Err(format!("unknown --alg `{other}`")),
    }
}

/// Color projection for the algorithms whose output already is the color.
fn flat_u64(c: &u64) -> usize {
    usize::try_from(*c).expect("color fits usize")
}

fn serve_with<A>(
    alg: &A,
    label: &str,
    palette: usize,
    color_of: impl Fn(&A::Output) -> usize + Sync,
    cfg: &ftcolor::batch::ServiceConfig,
    format: &str,
) -> Result<(), String>
where
    A: Algorithm<Input = u64> + Sync,
    A::State: Eq + std::hash::Hash + Clone + Send + Sync,
    A::Reg: Eq + std::hash::Hash + Clone + Send + Sync,
    A::Output: Eq + std::hash::Hash + Clone + Send + Sync,
{
    let (summary, timings) = ftcolor::batch::run_service(alg, label, palette, color_of, cfg);
    // Wall-clock facts go to stderr only: stdout is deterministic and
    // byte-identical at every --jobs value (the golden test pins this).
    eprintln!(
        "serve: {} instances in {} ms ({} colorings/s, {} jobs, peak RSS {} KiB)",
        summary.completed,
        timings.elapsed_ms,
        timings.colorings_per_sec,
        timings.jobs,
        timings.peak_rss_kib
    );
    match format {
        "json" => println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        ),
        _ => {
            println!(
                "{}: n={} instances={} rate={} seed={} sched={} valid={}",
                summary.algorithm,
                summary.n,
                summary.instances,
                summary.rate,
                summary.seed,
                summary.sched,
                summary.valid
            );
            println!(
                "  completed={} returned={} crashed={} stalled={} proper={} palette={}",
                summary.completed,
                summary.returned,
                summary.crashed,
                summary.stalled,
                summary.proper_ok,
                summary.palette_ok
            );
            println!(
                "  rounds={} latency p50/p99/max = {}/{}/{} sweeps  colors={:?}",
                summary.rounds,
                summary.latency_p50,
                summary.latency_p99,
                summary.latency_max,
                summary.color_histogram
            );
            println!(
                "  steps={} activations={} (max {})  interned s/r/o = {}/{}/{}  digest={}",
                summary.total_steps,
                summary.total_activations,
                summary.max_activations,
                summary.interned_states,
                summary.interned_regs,
                summary.interned_outputs,
                summary.outputs_digest
            );
        }
    }
    if summary.valid {
        Ok(())
    } else {
        Err(format!(
            "service verdict invalid: completed={}/{} stalled={} proper={} palette={}",
            summary.completed,
            summary.instances,
            summary.stalled,
            summary.proper_ok,
            summary.palette_ok
        ))
    }
}

fn print_cluster_summary(
    s: &cluster::ClusterSummary,
    format: &str,
    mode: &str,
    trace_json: Option<&str>,
) -> Result<(), String> {
    match format {
        "json" => {
            let mut v = serde_json::to_value(s).map_err(|e| e.to_string())?;
            if let serde::Value::Object(pairs) = &mut v {
                pairs.push(("mode".to_string(), serde::Value::String(mode.to_string())));
            }
            println!(
                "{}",
                serde_json::to_string_pretty(&v).map_err(|e| e.to_string())?
            );
        }
        _ => {
            println!(
                "{}: n={} seed={} mode={mode} valid={} palette_ok={} returned={}",
                s.alg, s.n, s.seed, s.valid, s.palette_ok, s.all_correct_returned
            );
            println!(
                "  colors: {:?}  crashed: {:?}  stalled: {:?}  timed_out={}",
                s.colors, s.crashed, s.stalled, s.timed_out
            );
            println!(
                "  rounds_max={} wall_ms={} sent={} delivered={} dropped={} \
                 dead_reads={} malformed={}",
                s.rounds_max,
                s.wall_ms,
                s.stats.sent,
                s.stats.delivered,
                s.stats.dropped + s.stats.partition_dropped,
                s.stats.served_dead_reads,
                s.stats.malformed
            );
            println!(
                "  trace: {} entries, digest {}",
                s.trace_len, s.trace_digest
            );
        }
    }
    if let Some(t) = trace_json {
        println!("  {t}");
    }
    Ok(())
}

fn cluster_verdict(summaries: &[cluster::ClusterSummary]) -> Result<(), String> {
    let mut failures = Vec::new();
    for s in summaries {
        if !s.valid {
            failures.push(format!("{}: coloring violation", s.alg));
        }
        if !s.palette_ok {
            failures.push(format!("{}: color outside the declared palette", s.alg));
        }
        if !s.all_correct_returned {
            failures.push(format!("{}: stalled nodes {:?}", s.alg, s.stalled));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}
