//! `ftcolor` — command-line front end for the reproduction.
//!
//! ```text
//! ftcolor color      --alg alg3 --n 16 --input staircase --sched random --timeline
//! ftcolor modelcheck --alg alg2 --ids 0,1,2 --jobs 4
//! ftcolor fuzz       --alg alg2 --ids 0,1,2 --generations 200 --jobs 4
//! ```
//!
//! Subcommands:
//!
//! * `color` — run a coloring algorithm on a ring and print the result
//!   (optionally as a step-by-step timeline);
//! * `modelcheck` — exhaustively explore every schedule on a small ring
//!   and report safety/livelock;
//! * `fuzz` — evolutionary adversarial schedule search.

use ftcolor::checker::{FuzzConfig, ParallelModelChecker, ScheduleFuzzer};
use ftcolor::model::render::{render_ring_coloring, render_schedule, render_timeline};
use ftcolor::model::{inputs, Topology};
use ftcolor::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "color" => cmd_color(&opts),
        "modelcheck" => cmd_modelcheck(&opts),
        "fuzz" => cmd_fuzz(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
ftcolor — wait-free coloring of the asynchronous cycle (PODC 2022 reproduction)

USAGE:
  ftcolor color      [--alg A] [--n N | --ids LIST] [--input KIND] [--sched S] [--seed K] [--timeline]
  ftcolor modelcheck [--alg A] [--ids LIST] [--max-configs M] [--jobs J]
  ftcolor fuzz       [--alg A] [--n N | --ids LIST] [--generations G] [--seed K] [--jobs J]

FLAGS:
  --alg          alg1 | alg2 | alg2p | alg3 | alg3p    (default alg3)
  --n            ring size (with --input)              (default 8)
  --ids          explicit identifiers, e.g. 5,11,7
  --input        staircase | staircase-poly | random | alternating | organ-pipe
                                                       (default random)
  --sched        sync | rr | random | solo | wave      (default random)
  --seed         u64 seed for inputs/schedules          (default 0)
  --timeline     print the step-by-step execution
  --max-configs  exploration cap for modelcheck        (default 2000000)
  --generations  fuzzer generations                    (default 150)
  --jobs         worker threads; 0 = all CPUs           (default 1)
                 results are identical for every value
";

/// Parses `--jobs` (default 1 worker; `0` means all CPUs downstream).
fn parse_jobs(opts: &HashMap<String, String>) -> Result<usize, String> {
    get(opts, "jobs", "1")
        .parse()
        .map_err(|e| format!("bad --jobs: {e}"))
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{a}`"));
        };
        let value = if matches!(key, "timeline") {
            "true".to_string()
        } else {
            it.next()
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone()
        };
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

fn get<'a>(opts: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    opts.get(key).map(String::as_str).unwrap_or(default)
}

fn parse_ids(opts: &HashMap<String, String>) -> Result<Vec<u64>, String> {
    if let Some(list) = opts.get("ids") {
        let ids: Result<Vec<u64>, _> = list.split(',').map(|s| s.trim().parse()).collect();
        return ids.map_err(|e| format!("bad --ids: {e}"));
    }
    let n: usize = get(opts, "n", "8")
        .parse()
        .map_err(|e| format!("bad --n: {e}"))?;
    let seed: u64 = get(opts, "seed", "0")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    Ok(match get(opts, "input", "random") {
        "staircase" => inputs::staircase(n),
        "staircase-poly" => inputs::staircase_poly(n),
        "alternating" => inputs::alternating(n),
        "organ-pipe" => inputs::organ_pipe(n),
        "random" => inputs::random_unique(n, (n as u64).pow(3).max(64), seed),
        other => return Err(format!("unknown --input `{other}`")),
    })
}

fn make_schedule(kind: &str, n: usize, seed: u64) -> Result<Box<dyn Schedule>, String> {
    Ok(match kind {
        "sync" => Box::new(Synchronous::new()),
        "rr" => Box::new(RoundRobin::new()),
        "random" => Box::new(RandomSubset::new(seed, 0.5)),
        "solo" => Box::new(SoloRunner::ascending(n)),
        "wave" => Box::new(Wave::new(n, 3, 2)),
        other => return Err(format!("unknown --sched `{other}`")),
    })
}

/// Runs one coloring algorithm generically and prints the outcome.
fn run_and_print<A>(
    alg: &A,
    ids: &[u64],
    sched_kind: &str,
    seed: u64,
    timeline: bool,
    cell: impl Fn(&A::Reg) -> String,
) -> Result<(), String>
where
    A: Algorithm<Input = u64>,
    A::Output: std::fmt::Debug,
{
    let topo = Topology::cycle(ids.len()).map_err(|e| e.to_string())?;
    let mut exec = Execution::new(alg, &topo, ids.to_vec());
    if timeline {
        let sched = make_schedule(sched_kind, ids.len(), seed)?;
        let text = render_timeline(&mut exec, sched, 100_000, cell);
        println!("{text}");
    } else {
        let sched = make_schedule(sched_kind, ids.len(), seed)?;
        exec.run(sched, 10_000_000).map_err(|e| e.to_string())?;
    }
    println!("coloring: {}", render_ring_coloring(exec.outputs()));
    println!(
        "max activations: {}",
        topo.nodes()
            .map(|p| exec.activation_count(p))
            .max()
            .unwrap_or(0)
    );
    let proper = topo.is_proper_partial_coloring(exec.outputs());
    println!("proper: {proper}");
    if !proper {
        return Err("output is not a proper coloring (bug!)".into());
    }
    Ok(())
}

fn cmd_color(opts: &HashMap<String, String>) -> Result<(), String> {
    let ids = parse_ids(opts)?;
    let seed: u64 = get(opts, "seed", "0")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let sched = get(opts, "sched", "random");
    let timeline = opts.contains_key("timeline");
    println!("ids: {ids:?}");
    match get(opts, "alg", "alg3") {
        "alg1" => run_and_print(&SixColoring, &ids, sched, seed, timeline, |r| {
            format!("{}", r.color)
        }),
        "alg2" => run_and_print(&FiveColoring, &ids, sched, seed, timeline, |r| {
            format!("({},{})", r.a, r.b)
        }),
        "alg2p" => run_and_print(&FiveColoringPatched, &ids, sched, seed, timeline, |r| {
            format!("({},{})c{}", r.a, r.b, r.c)
        }),
        "alg3" => run_and_print(&FastFiveColoring, &ids, sched, seed, timeline, |r| {
            format!("x{}({},{})", r.x, r.a, r.b)
        }),
        "alg3p" => run_and_print(&FastFiveColoringPatched, &ids, sched, seed, timeline, |r| {
            format!("x{}({},{})c{}", r.x, r.a, r.b, r.c)
        }),
        other => Err(format!("unknown --alg `{other}`")),
    }
}

fn coloring_safety(topo: &Topology, outs: &[Option<u64>]) -> Option<String> {
    if let Some((a, b)) = topo.first_conflict(outs) {
        return Some(format!("conflict on edge {a}-{b}"));
    }
    outs.iter()
        .flatten()
        .find(|&&c| c > 4)
        .map(|c| format!("color {c} outside the palette"))
}

fn cmd_modelcheck(opts: &HashMap<String, String>) -> Result<(), String> {
    let ids = parse_ids(opts)?;
    if ids.len() > 5 {
        return Err("modelcheck needs a small instance (≤ 5 processes)".into());
    }
    let cap: usize = get(opts, "max-configs", "2000000")
        .parse()
        .map_err(|e| format!("bad --max-configs: {e}"))?;
    let jobs = parse_jobs(opts)?;
    let topo = Topology::cycle(ids.len()).map_err(|e| e.to_string())?;

    macro_rules! check {
        ($alg:expr, $safety:expr) => {{
            let mc = ParallelModelChecker::new($alg, &topo, ids.clone())
                .with_max_configs(cap)
                .with_jobs(jobs);
            let o = mc.explore($safety).map_err(|e| e.to_string())?;
            println!("{o}");
            if let Some(v) = &o.safety_violation {
                println!("safety violation: {}", v.description);
                println!("{}", render_schedule(&v.schedule));
            }
            if let Some(lw) = &o.livelock {
                println!("livelock witness (prefix then repeat cycle):");
                println!("{}", render_schedule(&lw.prefix));
                println!("-- cycle --");
                println!("{}", render_schedule(&lw.cycle));
            }
        }};
    }
    match get(opts, "alg", "alg2") {
        "alg1" => check!(&SixColoring, |t: &Topology, o: &[Option<PairColor>]| {
            t.first_conflict(o)
                .map(|(a, b)| format!("conflict {a}-{b}"))
        }),
        "alg2" => check!(&FiveColoring, coloring_safety),
        "alg2p" => check!(&FiveColoringPatched, coloring_safety),
        "alg3p" => check!(&FastFiveColoringPatched, coloring_safety),
        "alg3" => check!(&FastFiveColoring, coloring_safety),
        other => return Err(format!("unknown --alg `{other}`")),
    }
    Ok(())
}

fn cmd_fuzz(opts: &HashMap<String, String>) -> Result<(), String> {
    let ids = parse_ids(opts)?;
    let seed: u64 = get(opts, "seed", "0")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let generations: usize = get(opts, "generations", "150")
        .parse()
        .map_err(|e| format!("bad --generations: {e}"))?;
    let jobs = parse_jobs(opts)?;
    let topo = Topology::cycle(ids.len()).map_err(|e| e.to_string())?;
    let config = FuzzConfig {
        generations,
        seed,
        jobs,
        ..FuzzConfig::default()
    };

    macro_rules! fuzz {
        ($alg:expr) => {{
            let fz = ScheduleFuzzer::new($alg, &topo, ids.clone(), config.clone());
            let report = fz.run(coloring_safety);
            println!(
                "best score: {} over {} executions",
                report.best_score, report.evaluated
            );
            if report.best_score >= 1000 {
                println!("starvation found! best schedule:");
                println!("{}", render_schedule(&report.best_schedule));
            }
            if let Some(v) = report.safety_violation {
                println!("SAFETY VIOLATION: {v}");
            }
        }};
    }
    match get(opts, "alg", "alg2") {
        "alg2" => fuzz!(&FiveColoring),
        "alg2p" => fuzz!(&FiveColoringPatched),
        "alg3" => fuzz!(&FastFiveColoring),
        "alg3p" => fuzz!(&FastFiveColoringPatched),
        other => return Err(format!("unknown --alg `{other}`")),
    }
    Ok(())
}
