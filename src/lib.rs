//! # `ftcolor` — wait-free coloring of the asynchronous cycle
//!
//! Facade crate re-exporting the whole reproduction of
//! *"Fault Tolerant Coloring of the Asynchronous Cycle"*
//! (Fraigniaud, Lambein-Monette, Rabie, PODC 2022):
//!
//! * [`model`] — the asynchronous state-model substrate (topologies,
//!   registers, schedules, execution engine),
//! * [`core`] — Algorithms 1–4 from the paper, the Cole–Vishkin reduction,
//!   and the baselines (synchronous 3-coloring, shared-memory renaming),
//! * [`checker`] — invariant checking, chain analysis, exhaustive model
//!   checking, and statistics,
//! * [`batch`] — the struct-of-arrays batch executor: millions of
//!   concurrent ring instances as packed interned slab rows, swept by
//!   work-stealing workers with outcomes bit-identical to the
//!   sequential executor, plus the seeded open-loop service front end
//!   behind `ftcolor serve`,
//! * [`runtime`] — an OS-thread execution substrate with crash and jitter
//!   injection,
//! * [`net`] — a discrete-event message-passing substrate with seeded
//!   fault injection (drop/delay/duplicate/reorder, partitions, crashes)
//!   and bit-identical trace replay, behind `ftcolor netsim`,
//! * [`cluster`] — the real-process cluster substrate: one OS process
//!   per ring node speaking line-delimited JSON frames, an orchestrator
//!   with real SIGKILL crash injection, and deterministic trace replay,
//!   behind `ftcolor cluster` / `ftcolor node`,
//! * [`analyze`] — the model-contract linter and happens-before race
//!   detector behind `ftcolor analyze`.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

#![forbid(unsafe_code)]

pub use ftcolor_analyze as analyze;
pub use ftcolor_batch as batch;
pub use ftcolor_checker as checker;
pub use ftcolor_cluster as cluster;
pub use ftcolor_core as core;
pub use ftcolor_model as model;
pub use ftcolor_net as net;
pub use ftcolor_runtime as runtime;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use ftcolor_core::prelude::*;
    pub use ftcolor_model::prelude::*;
}
